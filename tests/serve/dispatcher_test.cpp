// The daemon dispatcher's contract: a query is answered exactly as a
// batch SweepSession would answer it — warm queries from the store with
// zero fresh evaluations and byte-identical front CSVs, cold queries by
// batched evaluation — and concurrent requests missing under the same
// scoring identity coalesce into ONE evaluate_points batch, with the
// summed fresh_evaluations across responses equal to the number of
// unique cold points.
#include "serve/dispatcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dse/report.hpp"
#include "dse/store.hpp"
#include "dse/sweep.hpp"

namespace apsq::serve {
namespace {

dse::RequestSpec smoke_request() {
  dse::RequestSpec req;
  req.config.space = "smoke";
  req.config.threads = 1;
  return req;
}

/// What a batch SweepSession reports for the same config — the
/// byte-identity reference for every dispatcher front.
std::string serial_front_csv(const dse::SweepConfig& cfg) {
  dse::SweepSession session(cfg);
  const dse::SweepOutcome out = session.run();
  return dse::results_csv(out.front, cfg.scored_by_label()).to_string();
}

TEST(Dispatcher, WarmQueryMatchesSweepSessionWithZeroFreshEvaluations) {
  dse::EvalStore store;
  dse::RequestSpec req = smoke_request();

  // Warm the store the batch way: a session attached to it records the
  // full sweep.
  dse::SweepSession session(req.config, &store);
  const dse::SweepOutcome out = session.run();

  Dispatcher d(store);
  const QueryResult qr = d.query(req);
  EXPECT_EQ(qr.stats.fresh_evaluations, 0);
  EXPECT_EQ(qr.stats.eval_batches, 0);
  EXPECT_EQ(qr.stats.store_hits, 8);
  EXPECT_EQ(qr.results.size(), out.results.size());
  EXPECT_EQ(qr.front_size, out.front.size());
  EXPECT_EQ(qr.global_front_size, out.global_front_size);
  EXPECT_EQ(qr.front_csv,
            dse::results_csv(out.front, req.config.scored_by_label())
                .to_string());
}

TEST(Dispatcher, WarmPaperSpaceQueryMatchesBatchSweepSession) {
  // The acceptance sweep: the full 1248-point paper space, snapshotted by
  // a batch session, re-served warm by the dispatcher with 0 fresh
  // evaluations and the identical front bytes — including under a
  // different slicing objective subset (re-slicing never re-evaluates).
  dse::EvalStore store;
  dse::RequestSpec req;
  req.config.space = "paper";

  dse::SweepSession session(req.config, &store);
  const dse::SweepOutcome out = session.run();
  ASSERT_EQ(out.results.size(), 1248u);

  Dispatcher d(store);
  const QueryResult qr = d.query(req);
  EXPECT_EQ(qr.stats.fresh_evaluations, 0);
  EXPECT_EQ(qr.stats.store_hits, 1248);
  EXPECT_EQ(qr.front_csv,
            dse::results_csv(out.front, req.config.scored_by_label())
                .to_string());

  dse::RequestSpec sliced = req;
  sliced.config.objectives = dse::ObjectiveSet::parse("energy,latency");
  const QueryResult qs = d.query(sliced);
  EXPECT_EQ(qs.stats.fresh_evaluations, 0);
  dse::SweepSession sliced_session(sliced.config, &store);
  const dse::SweepOutcome sliced_out = sliced_session.run();
  EXPECT_EQ(qs.front_csv,
            dse::results_csv(sliced_out.front,
                             sliced.config.scored_by_label())
                .to_string());
}

TEST(Dispatcher, WarmReslicesAcrossObjectiveSubsetsAndTruncation) {
  dse::EvalStore store;
  Dispatcher d(store);
  dse::RequestSpec req = smoke_request();
  const QueryResult cold = d.query(req);  // warms the store
  EXPECT_EQ(cold.stats.fresh_evaluations, 8);

  // Different slicing objectives share the scoring key — still warm.
  dse::RequestSpec sliced = smoke_request();
  sliced.config.objectives = dse::ObjectiveSet::parse("energy,latency");
  const QueryResult qr = d.query(sliced);
  EXPECT_EQ(qr.stats.fresh_evaluations, 0);
  EXPECT_EQ(qr.front_csv, serial_front_csv(sliced.config));

  // `top` truncates the returned rows, never the front accounting or the
  // front_csv bytes.
  dse::RequestSpec top1 = smoke_request();
  top1.top = 1;
  const QueryResult qt = d.query(top1);
  EXPECT_EQ(qt.stats.fresh_evaluations, 0);
  EXPECT_EQ(qt.front.size(), 1u);
  EXPECT_EQ(qt.front_size, cold.front_size);
  EXPECT_EQ(qt.front_csv, cold.front_csv);
}

TEST(Dispatcher, ConcurrentColdQueriesCoalesceIntoOneBatch) {
  // Two concurrent cold queries over overlapping slices of the same
  // space/scoring identity must trigger exactly ONE evaluate_points
  // batch, with the summed fresh_evaluations equal to the unique cold
  // points. The batch hook parks the leader after it takes leadership
  // and before it freezes the batch, until both requests have registered
  // their misses — making the race deterministic.
  dse::EvalStore store;
  Dispatcher d(store);
  d.set_batch_hook([&d] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (d.inflight_requests() < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  });

  dse::RequestSpec req_a = smoke_request();
  dse::RequestSpec req_b = smoke_request();
  req_b.config.objectives = dse::ObjectiveSet::parse("energy,latency");

  QueryResult qr_a, qr_b;
  std::thread ta([&] { qr_a = d.query(req_a); });
  std::thread tb([&] { qr_b = d.query(req_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(d.total_eval_batches(), 1);
  EXPECT_EQ(qr_a.stats.fresh_evaluations + qr_b.stats.fresh_evaluations, 8);
  EXPECT_EQ(qr_a.stats.coalesced + qr_b.stats.coalesced, 8);
  EXPECT_EQ(d.total_fresh_evaluations(), 8);
  EXPECT_EQ(qr_a.front_csv, serial_front_csv(req_a.config));
  EXPECT_EQ(qr_b.front_csv, serial_front_csv(req_b.config));
}

TEST(Dispatcher, MixedWarmAndColdThreadsFreshEqualsUniqueColdPoints) {
  dse::EvalStore store;
  Dispatcher d(store);
  const QueryResult warmup = d.query(smoke_request());
  ASSERT_EQ(warmup.stats.fresh_evaluations, 8);

  // Three warm requests (the snapshotted scoring identity) race three
  // cold ones (a different seed = a different scoring key). However the
  // cold trio interleaves, the daemon evaluates each unique cold point
  // exactly once: summed fresh across every response stays 8 + 8.
  dse::RequestSpec cold_req = smoke_request();
  cold_req.config.seed = 0x5EED;

  constexpr int kThreads = 6;
  std::vector<QueryResult> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<size_t>(t)] =
          d.query(t % 2 == 0 ? smoke_request() : cold_req);
    });
  for (std::thread& t : threads) t.join();

  index_t fresh = 0;
  for (const QueryResult& qr : results) fresh += qr.stats.fresh_evaluations;
  EXPECT_EQ(fresh, 8);
  EXPECT_EQ(d.total_fresh_evaluations(), 16);  // warmup + the cold trio
  const std::string warm_csv = serial_front_csv(smoke_request().config);
  const std::string cold_csv = serial_front_csv(cold_req.config);
  for (int t = 0; t < kThreads; ++t) {
    const QueryResult& qr = results[static_cast<size_t>(t)];
    if (t % 2 == 0) {
      EXPECT_EQ(qr.stats.fresh_evaluations, 0) << "warm request evaluated";
      EXPECT_EQ(qr.stats.store_hits, 8);
      EXPECT_EQ(qr.front_csv, warm_csv);
    } else {
      EXPECT_EQ(qr.front_csv, cold_csv);
    }
  }
}

TEST(Dispatcher, ConcurrentSearchQueriesCoalesceIntoOneDriverRun) {
  // Cold search queries under one scoring identity coalesce whole: ONE
  // SearchDriver run (one leader), everyone else answered from the
  // merged store rows — however the requests interleave.
  dse::EvalStore store;
  Dispatcher d(store);

  dse::RequestSpec req;
  req.config.space = "paper";
  req.config.threads = 1;
  req.config.mode = dse::RunMode::kSearch;
  req.config.budget = 24;
  req.config.budget_set = true;

  constexpr int kThreads = 4;
  std::vector<QueryResult> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { results[static_cast<size_t>(t)] = d.query(req); });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(d.total_eval_batches(), 1);
  index_t fresh = 0;
  for (const QueryResult& qr : results) fresh += qr.stats.fresh_evaluations;
  const index_t rows = static_cast<index_t>(results[0].results.size());
  EXPECT_GT(rows, 0);
  EXPECT_LE(rows, 24);
  EXPECT_EQ(fresh, rows);  // only the leader evaluated
  EXPECT_EQ(d.total_fresh_evaluations(), rows);
  // Every response is byte-identical to the batch session's answer.
  const std::string want = serial_front_csv(req.config);
  for (const QueryResult& qr : results) {
    EXPECT_EQ(qr.front_csv, want);
    EXPECT_EQ(qr.results.size(), results[0].results.size());
  }
  // A repeat answers warm, straight from the sparse snapshot.
  const QueryResult warm = d.query(req);
  EXPECT_EQ(warm.stats.fresh_evaluations, 0);
  EXPECT_EQ(warm.stats.store_hits, rows);
  EXPECT_EQ(warm.front_csv, want);
}

TEST(Dispatcher, PartialSnapshotEvaluatesOnlyTheMisses) {
  // Build a snapshot missing its last row (the on-disk shape a partially
  // scored space loads as), and check the dispatcher fills exactly the
  // hole: store_hits 7, fresh 1, front bytes unchanged.
  const std::string path = ::testing::TempDir() + "dispatcher_partial.json";
  {
    dse::EvalStore store;
    Dispatcher d(store);
    d.query(smoke_request());
    ASSERT_TRUE(store.save_file(path));
  }
  std::stringstream buf;
  buf << std::ifstream(path).rdbuf();
  std::string whole = buf.str();
  const size_t row = whole.rfind(",\n      {\"i\": ");
  ASSERT_NE(row, std::string::npos);
  const size_t row_end = whole.find("}\n    ]", row);
  ASSERT_NE(row_end, std::string::npos);
  whole.erase(row, row_end + 1 - row);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << whole;

  dse::EvalStore store;
  ASSERT_EQ(store.load_file(path), 1u);
  Dispatcher d(store);
  const QueryResult qr = d.query(smoke_request());
  EXPECT_EQ(qr.stats.store_hits, 7);
  EXPECT_EQ(qr.stats.fresh_evaluations, 1);
  EXPECT_EQ(qr.stats.eval_batches, 1);
  EXPECT_EQ(qr.front_csv, serial_front_csv(smoke_request().config));
  std::remove(path.c_str());
}

TEST(Dispatcher, RejectsInvalidConfigsWithTheCliMessage) {
  dse::EvalStore store;
  Dispatcher d(store);
  dse::RequestSpec bad_space = smoke_request();
  bad_space.config.space = "nope";
  try {
    d.query(bad_space);
    FAIL() << "expected an invalid-space query to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown space: nope"),
              std::string::npos)
        << e.what();
  }
  dse::RequestSpec bad_promote = smoke_request();
  bad_promote.config.promote_band = 0.1;
  bad_promote.config.promote_band_set = true;
  try {
    d.query(bad_promote);
    FAIL() << "expected an inconsistent config to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "--promote-band: requires --backend mixed\n");
  }
  // Rejected requests never count as served.
  EXPECT_EQ(d.total_requests(), 0);
}

}  // namespace
}  // namespace apsq::serve
