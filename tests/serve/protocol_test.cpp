// The wire protocol's contract: one JSON line in, one versioned JSON
// line out; a query speaks the RequestSpec vocabulary with the job-spec
// path's exact validation messages; malformed input becomes an ok:false
// response (never a dropped connection or a crash); future
// schema_versions are rejected naming the version and the supported
// range.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hpp"
#include "dse/store.hpp"
#include "serve/dispatcher.hpp"
#include "serve/server.hpp"

namespace apsq::serve {
namespace {

/// Every response must itself be one valid, versioned JSON object.
JsonValue parsed_response(const LineResult& r) {
  const JsonValue doc = json_parse(r.response);
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("schema_version").as_i64(), kProtocolSchemaVersion);
  EXPECT_EQ(doc.get("ok").as_bool(), r.ok);
  return doc;
}

TEST(Protocol, PingStatsAndShutdownAnswerWithIdEcho) {
  dse::EvalStore store;
  Dispatcher d(store);

  const LineResult ping =
      handle_request_line(d, "{\"cmd\": \"ping\", \"id\": \"p1\"}");
  EXPECT_TRUE(ping.ok);
  EXPECT_FALSE(ping.shutdown);
  const JsonValue pdoc = parsed_response(ping);
  EXPECT_EQ(pdoc.get("id").as_string(), "p1");
  EXPECT_EQ(pdoc.get("cmd").as_string(), "ping");

  const LineResult stats = handle_request_line(d, "{\"cmd\": \"stats\"}");
  EXPECT_TRUE(stats.ok);
  const JsonValue sdoc = parsed_response(stats);
  EXPECT_EQ(sdoc.get("requests").as_i64(), 0);
  EXPECT_EQ(sdoc.get("store_entries").as_i64(), 0);

  const LineResult bye = handle_request_line(d, "{\"cmd\": \"shutdown\"}");
  EXPECT_TRUE(bye.ok);
  EXPECT_TRUE(bye.shutdown);
  EXPECT_EQ(parsed_response(bye).get("cmd").as_string(), "shutdown");
}

TEST(Protocol, QueryResponseCarriesFrontRowsAndTelemetry) {
  dse::EvalStore store;
  Dispatcher d(store);
  const std::string query =
      "{\"schema_version\": 1, \"id\": \"q1\", \"space\": \"smoke\","
      " \"threads\": 1}";

  const LineResult cold = handle_request_line(d, query);
  ASSERT_TRUE(cold.ok) << cold.response;
  const JsonValue cdoc = parsed_response(cold);
  EXPECT_EQ(cdoc.get("id").as_string(), "q1");
  EXPECT_EQ(cdoc.get("points").as_i64(), 8);
  EXPECT_EQ(static_cast<i64>(cdoc.get("front").size()),
            cdoc.get("front_size").as_i64());
  // Front rows carry the snapshot row vocabulary.
  const JsonValue& row = cdoc.get("front").at(0);
  EXPECT_EQ(row.get("workload").as_string(), "bert");
  EXPECT_TRUE(row.get("energy_pj").is_number());
  EXPECT_EQ(cdoc.get("stats").get("fresh_evaluations").as_i64(), 8);
  EXPECT_EQ(cdoc.get("stats").get("eval_batches").as_i64(), 1);

  // The identical request again is warm: same front bytes, 0 fresh.
  const LineResult warm = handle_request_line(d, query);
  ASSERT_TRUE(warm.ok);
  const JsonValue wdoc = parsed_response(warm);
  EXPECT_EQ(wdoc.get("stats").get("fresh_evaluations").as_i64(), 0);
  EXPECT_EQ(wdoc.get("stats").get("store_hits").as_i64(), 8);
  // CI greps the daemon's warm response for this exact fragment.
  EXPECT_NE(warm.response.find("\"fresh_evaluations\": 0"),
            std::string::npos);
}

TEST(Protocol, SearchQueryAnswersSparseAndWarmRepliesFromTheStore) {
  dse::EvalStore store;
  Dispatcher d(store);
  const std::string query =
      "{\"schema_version\": 1, \"id\": \"s1\", \"space\": \"paper\","
      " \"mode\": \"search\", \"strategy\": \"evolve\", \"budget\": 32,"
      " \"search_seed\": 3, \"threads\": 1}";

  const LineResult cold = handle_request_line(d, query);
  ASSERT_TRUE(cold.ok) << cold.response;
  const JsonValue cdoc = parsed_response(cold);
  // Sparse: a budgeted search reports the points it evaluated, not the
  // 1248-point space.
  EXPECT_LE(cdoc.get("points").as_i64(), 32);
  EXPECT_GT(cdoc.get("points").as_i64(), 0);
  EXPECT_EQ(cdoc.get("stats").get("fresh_evaluations").as_i64(),
            cdoc.get("points").as_i64());

  // Warm: the same (strategy, budget, seed) identity answers from the
  // store without re-running the driver.
  const LineResult warm = handle_request_line(d, query);
  ASSERT_TRUE(warm.ok) << warm.response;
  const JsonValue wdoc = parsed_response(warm);
  EXPECT_EQ(wdoc.get("stats").get("fresh_evaluations").as_i64(), 0);
  EXPECT_EQ(wdoc.get("stats").get("store_hits").as_i64(),
            cdoc.get("points").as_i64());
}

TEST(Protocol, RejectsMalformedRequestsWithoutThrowing) {
  dse::EvalStore store;
  Dispatcher d(store);
  const auto expect_error = [&](const std::string& line,
                                const std::string& fragment) {
    const LineResult r = handle_request_line(d, line);
    EXPECT_FALSE(r.ok) << line;
    EXPECT_FALSE(r.shutdown);
    const JsonValue doc = parsed_response(r);
    EXPECT_NE(doc.get("error").as_string().find(fragment), std::string::npos)
        << r.response;
  };
  expect_error("not json", "request: ");
  expect_error("[1, 2]", "top-level value is not an object");
  expect_error("{\"schema_version\": 2}",
               "unsupported schema_version 2 (supported: 1..1)");
  expect_error("{\"cmd\": \"frobnicate\"}",
               "unknown cmd \"frobnicate\" (expected query|ping|stats|shutdown)");
  expect_error("{\"spce\": \"smoke\"}", "unknown key \"spce\"");
  // Field validation speaks the job-spec path's exact messages.
  expect_error("{\"threads\": 0}", "\"threads\" must be in [1, 4096]");
  expect_error("{\"objectives\": \"energy,joy\"}", "unknown objective");
  expect_error("{\"space\": \"nope\"}", "unknown space: nope");
  expect_error("{\"strategy\": \"anneal\"}", "unknown strategy: anneal");
  expect_error("{\"budget\": 0}", "\"budget\" must be in");
  expect_error("{\"mode\": \"search\"}",
               "--mode search: requires --budget >= 1");
  expect_error("{\"space\": \"fine\"}", "beyond exhaustive sweep");
  // An id in a failing request is still echoed, so clients can correlate.
  const LineResult r =
      handle_request_line(d, "{\"id\": \"x7\", \"space\": \"nope\"}");
  EXPECT_EQ(parsed_response(r).get("id").as_string(), "x7");
  // None of these reached the dispatcher as a served request.
  EXPECT_EQ(d.total_requests(), 0);
}

TEST(Protocol, ServeStreamAnswersEachLineAndStopsAtShutdown) {
  dse::EvalStore store;
  Dispatcher d(store);
  std::istringstream in(
      "{\"cmd\": \"ping\"}\n"
      "\n"
      "garbage\n"
      "{\"cmd\": \"shutdown\"}\n"
      "{\"cmd\": \"ping\", \"id\": \"after\"}\n");
  std::ostringstream out;
  const i64 errors = serve_stream(d, in, out);
  EXPECT_EQ(errors, 1);  // the garbage line; blanks are skipped
  // Three responses — the line after shutdown is never processed.
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(json_parse(line).is_object()) << line;
    EXPECT_EQ(line.find("after"), std::string::npos);
  }
  EXPECT_EQ(n, 3);
}

}  // namespace
}  // namespace apsq::serve
