#include "rae/psum_banks.hpp"

#include <gtest/gtest.h>

namespace apsq {
namespace {

TensorI32 tile(std::vector<i32> v) {
  const index_t n = static_cast<index_t>(v.size());
  return TensorI32({n}, std::move(v));
}

TEST(PsumBanks, WriteReadRoundTrip) {
  PsumBanks banks(3);
  banks.write(0, tile({1, -2, 3}), 5);
  const TensorI32& got = banks.read(0);
  EXPECT_EQ(got(0), 1);
  EXPECT_EQ(got(1), -2);
  EXPECT_EQ(got(2), 3);
  EXPECT_EQ(banks.exponent(0), 5);
}

TEST(PsumBanks, FourIndependentBanks) {
  PsumBanks banks(1);
  for (index_t b = 0; b < PsumBanks::kNumBanks; ++b)
    banks.write(b, tile({static_cast<i32>(b * 10)}), static_cast<int>(b));
  for (index_t b = 0; b < PsumBanks::kNumBanks; ++b) {
    EXPECT_EQ(banks.read(b)(0), b * 10);
    EXPECT_EQ(banks.exponent(b), b);
  }
}

TEST(PsumBanks, ValidityTracking) {
  PsumBanks banks(1);
  EXPECT_FALSE(banks.valid(0));
  banks.write(0, tile({1}), 0);
  EXPECT_TRUE(banks.valid(0));
  banks.invalidate_all();
  EXPECT_FALSE(banks.valid(0));
}

TEST(PsumBanks, ReadingInvalidBankThrows) {
  PsumBanks banks(1);
  EXPECT_THROW(banks.read(2), std::logic_error);
}

TEST(PsumBanks, RejectsNonInt8Codes) {
  PsumBanks banks(1);
  EXPECT_THROW(banks.write(0, tile({128}), 0), std::logic_error);
  EXPECT_THROW(banks.write(0, tile({-129}), 0), std::logic_error);
  EXPECT_NO_THROW(banks.write(0, tile({127}), 0));
  EXPECT_NO_THROW(banks.write(0, tile({-128}), 0));
}

TEST(PsumBanks, RejectsWrongTileSize) {
  PsumBanks banks(2);
  EXPECT_THROW(banks.write(0, tile({1}), 0), std::logic_error);
}

TEST(PsumBanks, RejectsBadBankIndex) {
  PsumBanks banks(1);
  EXPECT_THROW(banks.write(4, tile({1}), 0), std::logic_error);
  EXPECT_THROW(banks.write(-1, tile({1}), 0), std::logic_error);
}

TEST(PsumBanks, AccessCounters) {
  PsumBanks banks(1);
  banks.write(0, tile({1}), 0);
  banks.write(1, tile({2}), 0);
  banks.read(0);
  EXPECT_EQ(banks.tile_writes(), 2);
  EXPECT_EQ(banks.tile_reads(), 1);
}

}  // namespace
}  // namespace apsq
