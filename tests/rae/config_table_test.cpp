#include "rae/config_table.hpp"

#include <gtest/gtest.h>

namespace apsq {
namespace {

TEST(RaeConfigTable, EncodingsMatchFig2Table) {
  // gs | s0 | s1  (Fig. 2 "Config. Table")
  //  1 | 00 |  x
  //  2 | 01 |  x
  //  3 | 10 |  0
  //  4 | 10 |  1
  EXPECT_EQ(rae_config_for_group_size(1).s0, 0b00);
  EXPECT_TRUE(rae_config_for_group_size(1).s1_dont_care);
  EXPECT_EQ(rae_config_for_group_size(2).s0, 0b01);
  EXPECT_TRUE(rae_config_for_group_size(2).s1_dont_care);
  EXPECT_EQ(rae_config_for_group_size(3).s0, 0b10);
  EXPECT_EQ(rae_config_for_group_size(3).s1, 0);
  EXPECT_EQ(rae_config_for_group_size(4).s0, 0b10);
  EXPECT_EQ(rae_config_for_group_size(4).s1, 1);
}

TEST(RaeConfigTable, FoldBankCounts) {
  EXPECT_EQ(rae_config_for_group_size(1).fold_banks(), 1);
  EXPECT_EQ(rae_config_for_group_size(2).fold_banks(), 2);
  EXPECT_EQ(rae_config_for_group_size(3).fold_banks(), 3);
  EXPECT_EQ(rae_config_for_group_size(4).fold_banks(), 4);
}

TEST(RaeConfigTable, InverseLookupRoundTrips) {
  for (index_t gs = 1; gs <= kRaeMaxGroupSize; ++gs) {
    const RaeStaticConfig c = rae_config_for_group_size(gs);
    EXPECT_EQ(rae_group_size_from_encoding(c.s0, c.s1), gs);
  }
}

TEST(RaeConfigTable, RejectsOutOfRangeGroupSize) {
  EXPECT_THROW(rae_config_for_group_size(0), std::logic_error);
  EXPECT_THROW(rae_config_for_group_size(5), std::logic_error);
}

TEST(RaeConfigTable, RejectsUndefinedEncoding) {
  EXPECT_THROW(rae_group_size_from_encoding(0b11, 0), std::logic_error);
}

}  // namespace
}  // namespace apsq
