#include "rae/rae_engine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "quant/apsq_int.hpp"

namespace apsq {
namespace {

TensorI32 random_tile(Shape s, Rng& rng, i32 range = 2000) {
  TensorI32 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i32>(static_cast<i64>(rng.next_u64() %
                                             (2 * static_cast<u64>(range) + 1)) -
                            range);
  return t;
}

RaeEngine::Options opts(index_t gs, index_t np, int exp) {
  RaeEngine::Options o;
  o.group_size = gs;
  o.num_tiles = np;
  o.exponents = {exp};
  return o;
}

class RaeVsReferenceSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(RaeVsReferenceSweep, StructuralModelMatchesFunctionalReference) {
  // The bank/mux/adder engine must be functionally identical to the
  // Algorithm-1 integer reference for every (gs, np).
  const auto [gs, np] = GetParam();
  const int exp = 5;
  Rng rng(static_cast<u64>(gs * 100 + np));
  const Shape shape{4, 4};

  RaeEngine engine(shape, opts(gs, np, exp));
  GroupedApsqInt::Options ropt;
  ropt.group_size = gs;
  ropt.num_tiles = np;
  ropt.exponents = {exp};
  GroupedApsqInt ref(shape, ropt);

  for (index_t t = 0; t < np; ++t) {
    const TensorI32 tile = random_tile(shape, rng);
    engine.push(tile);
    ref.push(tile);
  }
  const TensorI64 a = engine.output();
  const TensorI64 b = ref.output();
  for (index_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a[i], b[i]) << "gs=" << gs << " np=" << np;
}

INSTANTIATE_TEST_SUITE_P(
    GsNpGrid, RaeVsReferenceSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 4),
                       ::testing::Values<index_t>(1, 2, 3, 4, 5, 7, 8, 16)));

TEST(RaeEngine, S2SequencingGs4) {
  // §III-C walk-through: with gs = 4, s2 toggles 0 for plain quantization
  // and 1 for the fold, plus the final tile.
  RaeEngine e({1}, opts(4, 10, 0));
  // i:        0  1  2  3  4  5  6  7  8  9(last)
  // s2:       1  0  0  0  1  0  0  0  1  1
  const bool expected[] = {true, false, false, false, true,
                           false, false, false, true, true};
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(e.s2_for(i), expected[i]) << i;
}

TEST(RaeEngine, S2AlwaysOneForGs1) {
  RaeEngine e({1}, opts(1, 5, 0));
  for (index_t i = 0; i < 5; ++i) EXPECT_TRUE(e.s2_for(i));
}

TEST(RaeEngine, FoldResultParksInBankGsMinus1) {
  RaeEngine e({1}, opts(4, 5, 0));
  e.push(TensorI32({1}, 10));  // fold (i=0) -> bank 3
  EXPECT_TRUE(e.banks().valid(3));
  EXPECT_FALSE(e.banks().valid(0));
  e.push(TensorI32({1}, 20));  // plain -> bank 0
  EXPECT_TRUE(e.banks().valid(0));
  e.push(TensorI32({1}, 30));  // plain -> bank 1
  EXPECT_TRUE(e.banks().valid(1));
}

TEST(RaeEngine, Gs1UsesOnlyBank0) {
  RaeEngine e({1}, opts(1, 3, 0));
  for (int i = 0; i < 3; ++i) e.push(TensorI32({1}, i + 1));
  EXPECT_TRUE(e.banks().valid(0));
  EXPECT_FALSE(e.banks().valid(1));
  EXPECT_FALSE(e.banks().valid(2));
  EXPECT_FALSE(e.banks().valid(3));
  EXPECT_EQ(e.output()(0), 6);  // exact at exponent 0, no clipping
}

TEST(RaeEngine, ExactAccumulationAtExponentZero) {
  RaeEngine e({2}, opts(3, 6, 0));
  i64 sum0 = 0, sum1 = 0;
  Rng rng(9);
  for (int t = 0; t < 6; ++t) {
    const i32 a = static_cast<i32>(rng.next_u64() % 21) - 10;
    const i32 b = static_cast<i32>(rng.next_u64() % 21) - 10;
    // keep running sums inside int8 so no clipping occurs
    e.push(TensorI32({2}, std::vector<i32>{a, b}));
    sum0 += a;
    sum1 += b;
  }
  EXPECT_EQ(e.output()(0), sum0);
  EXPECT_EQ(e.output()(1), sum1);
}

TEST(RaeEngine, CountsDatapathOps) {
  RaeEngine e({4}, opts(2, 4, 3));
  Rng rng(10);
  for (int t = 0; t < 4; ++t) e.push(random_tile({4}, rng, 100));
  // Every tile quantized once: 4 tiles x 4 elems.
  EXPECT_EQ(e.quant_ops(), 16);
  // Dequant happens at folds (i=2 reads 2 banks, i=3 reads 1) + output (1).
  EXPECT_EQ(e.dequant_ops(), (2 + 1 + 1) * 4);
  EXPECT_GT(e.adder_ops(), 0);
}

TEST(RaeEngine, OutputBeforeCompletionThrows) {
  RaeEngine e({1}, opts(1, 2, 0));
  e.push(TensorI32({1}, 1));
  EXPECT_THROW(e.output(), std::logic_error);
}

TEST(RaeEngine, TooManyPushesThrows) {
  RaeEngine e({1}, opts(1, 1, 0));
  e.push(TensorI32({1}, 1));
  EXPECT_THROW(e.push(TensorI32({1}, 1)), std::logic_error);
}

TEST(RaeEngine, PerTileExponents) {
  RaeEngine::Options o;
  o.group_size = 1;
  o.num_tiles = 2;
  o.exponents = {0, 1};
  RaeEngine e({1}, o);
  e.push(TensorI32({1}, 7));   // AP0 = 7 at e=0
  e.push(TensorI32({1}, 3));   // (3 + 7) >> 1 = 5 at e=1
  EXPECT_EQ(e.output()(0), 10);  // 5 << 1
}

TEST(RaeEngine, RejectsGroupSizeBeyondBanks) {
  EXPECT_THROW(RaeEngine({1}, opts(5, 4, 0)), std::logic_error);
}

}  // namespace
}  // namespace apsq
