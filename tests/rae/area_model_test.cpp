#include "rae/area_model.hpp"

#include <gtest/gtest.h>

namespace apsq {
namespace {

AcceleratorConfig paper_arch() { return AcceleratorConfig::dnn_default(); }

TEST(AreaModel, BaselineMatchesTableII) {
  // Paper: 1,873,408 µm². Component composition must land within 2 %.
  const double a = baseline_accelerator_area(paper_arch()).total_um2();
  EXPECT_NEAR(a, 1873408.0, 0.02 * 1873408.0);
}

TEST(AreaModel, RaeMatchesTableII) {
  // Paper: 86,410 µm².
  const double a = rae_area(paper_arch()).total_um2();
  EXPECT_NEAR(a, 86410.0, 0.02 * 86410.0);
}

TEST(AreaModel, CombinedOverheadIsAboutThreePercent) {
  // Paper: 1,933,674 µm² == +3.21 % over baseline.
  const double base = baseline_accelerator_area(paper_arch()).total_um2();
  const double with_rae = accelerator_with_rae_area(paper_arch()).total_um2();
  const double overhead_pct = 100.0 * (with_rae - base) / base;
  EXPECT_NEAR(overhead_pct, 3.21, 0.35);
}

TEST(AreaModel, CombinedLessThanNaiveSum) {
  // Synthesis shares logic: combined < baseline + standalone RAE.
  const double base = baseline_accelerator_area(paper_arch()).total_um2();
  const double rae = rae_area(paper_arch()).total_um2();
  const double with_rae = accelerator_with_rae_area(paper_arch()).total_um2();
  EXPECT_LT(with_rae, base + rae);
  EXPECT_GT(with_rae, base);
}

TEST(AreaModel, ItemTotalsSum) {
  const AreaReport r = baseline_accelerator_area(paper_arch());
  double manual = 0.0;
  for (const auto& item : r.items) manual += item.total_um2();
  EXPECT_DOUBLE_EQ(manual, r.total_um2());
}

TEST(AreaModel, PeArrayDominatedByMacs) {
  const AreaReport r = baseline_accelerator_area(paper_arch());
  bool found = false;
  for (const auto& item : r.items)
    if (item.component == "INT8 MAC PE") {
      EXPECT_EQ(item.count, 16 * 8 * 8);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(AreaModel, RaeHasFourDequantShiftersPerLane) {
  const AreaReport r = rae_area(paper_arch());
  index_t dequant = 0, quant = 0;
  for (const auto& item : r.items) {
    if (item.component == "dequant shifter (<<)") dequant = item.count;
    if (item.component == "quant shifter (>>)") quant = item.count;
  }
  EXPECT_EQ(dequant, 4 * quant);  // one per PSUM bank (Fig. 2)
}

TEST(AreaModel, ScalesWithBufferSizes) {
  AcceleratorConfig big = paper_arch();
  big.ifmap_buf_bytes *= 2;
  EXPECT_GT(baseline_accelerator_area(big).total_um2(),
            baseline_accelerator_area(paper_arch()).total_um2());
}

}  // namespace
}  // namespace apsq
