#include "sim/accelerator.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "quant/apsq_int.hpp"
#include "tensor/matmul.hpp"
#include "tensor/tile.hpp"

namespace apsq {
namespace {

TensorI8 random_i8(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

SimConfig small_config(Dataflow df, PsumConfig psum, int exp = 4) {
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = 1 << 20;
  cfg.arch.ofmap_buf_bytes = 1 << 20;
  cfg.arch.weight_buf_bytes = 1 << 20;
  cfg.dataflow = df;
  cfg.psum = psum;
  cfg.psum_exponents = {exp};
  return cfg;
}

TEST(Accelerator, BaselineWsBitExactAgainstGoldenGemm) {
  Rng rng(1);
  const TensorI8 x = random_i8({13, 22}, rng);
  const TensorI8 w = random_i8({22, 9}, rng);
  Accelerator acc(small_config(Dataflow::kWS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  const TensorI32 ref = matmul_i8(x, w);
  for (index_t i = 0; i < ref.numel(); ++i)
    ASSERT_EQ(r.ofmap[i], static_cast<i64>(ref[i]));
}

TEST(Accelerator, BaselineIsBitExactAgainstGoldenGemm) {
  Rng rng(2);
  const TensorI8 x = random_i8({10, 17}, rng);
  const TensorI8 w = random_i8({17, 11}, rng);
  Accelerator acc(small_config(Dataflow::kIS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  const TensorI32 ref = matmul_i8(x, w);
  for (index_t i = 0; i < ref.numel(); ++i)
    ASSERT_EQ(r.ofmap[i], static_cast<i64>(ref[i]));
}

// The APSQ datapath must equal the functional integer reference
// (GroupedApsqInt) applied per output tile position over the ci tiling.
void check_apsq_vs_reference(Dataflow df, index_t gs, index_t m, index_t k,
                             index_t n, int exp, u64 seed) {
  Rng rng(seed);
  const TensorI8 x = random_i8({m, k}, rng);
  const TensorI8 w = random_i8({k, n}, rng);
  SimConfig cfg = small_config(df, PsumConfig::apsq_int8(gs), exp);
  Accelerator acc(cfg);
  const SimResult r = acc.run_gemm(x, w);

  const index_t pci = cfg.arch.pci;
  const index_t nci = ceil_div(k, pci);
  // Reference: tile the GEMM identically and run GroupedApsqInt per
  // position covering the full output (single position == whole matrix
  // works because quantization is elementwise).
  GroupedApsqInt::Options opt;
  opt.spec = QuantSpec::int8();
  opt.group_size = gs;
  opt.num_tiles = nci;
  opt.exponents = {exp};
  GroupedApsqInt ref_engine({m, n}, opt);
  for (index_t t = 0; t < nci; ++t)
    ref_engine.push(
        matmul_i8_krange(x, w, t * pci, std::min((t + 1) * pci, k)));
  const TensorI64 ref = ref_engine.output();
  for (index_t i = 0; i < ref.numel(); ++i)
    ASSERT_EQ(r.ofmap[i], ref[i]) << to_string(df) << " gs=" << gs;
}

TEST(Accelerator, ApsqWsMatchesReferenceGs1) {
  check_apsq_vs_reference(Dataflow::kWS, 1, 9, 26, 7, 5, 10);
}
TEST(Accelerator, ApsqWsMatchesReferenceGs2) {
  check_apsq_vs_reference(Dataflow::kWS, 2, 8, 32, 8, 5, 11);
}
TEST(Accelerator, ApsqWsMatchesReferenceGs3) {
  check_apsq_vs_reference(Dataflow::kWS, 3, 5, 30, 6, 6, 12);
}
TEST(Accelerator, ApsqWsMatchesReferenceGs4) {
  check_apsq_vs_reference(Dataflow::kWS, 4, 12, 40, 4, 6, 13);
}
TEST(Accelerator, ApsqIsMatchesReferenceGs1) {
  check_apsq_vs_reference(Dataflow::kIS, 1, 9, 26, 7, 5, 14);
}
TEST(Accelerator, ApsqIsMatchesReferenceGs3) {
  check_apsq_vs_reference(Dataflow::kIS, 3, 6, 29, 10, 6, 15);
}

TEST(Accelerator, CycleCountEqualsTileProduct) {
  Rng rng(3);
  const TensorI8 x = random_i8({8, 16}, rng);
  const TensorI8 w = random_i8({16, 8}, rng);
  Accelerator acc(small_config(Dataflow::kWS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  // 2 row tiles × 4 ci tiles × 2 co tiles.
  EXPECT_EQ(r.stats.cycles, 2 * 4 * 2);
  EXPECT_EQ(r.stats.mac_ops, 8 * 16 * 8);
}

TEST(Accelerator, EnergyPositiveAndDramNonZero) {
  Rng rng(4);
  const TensorI8 x = random_i8({8, 16}, rng);
  const TensorI8 w = random_i8({16, 8}, rng);
  Accelerator acc(small_config(Dataflow::kWS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  EXPECT_GT(r.stats.energy_pj(), 0.0);
  EXPECT_GT(r.stats.dram.total_bytes(), 0);
  EXPECT_GT(r.stats.sram.total_bytes(), 0);
}

TEST(Accelerator, ApsqReducesPsumTrafficBytes) {
  Rng rng(5);
  const TensorI8 x = random_i8({16, 64}, rng);
  const TensorI8 w = random_i8({64, 16}, rng);
  Accelerator base(small_config(Dataflow::kWS, PsumConfig::baseline_int32()));
  Accelerator apsq(small_config(Dataflow::kWS, PsumConfig::apsq_int8(1), 6));
  const i64 pb = base.run_gemm(x, w).stats.sram.total(Operand::kPsum);
  const i64 pa = apsq.run_gemm(x, w).stats.sram.total(Operand::kPsum);
  EXPECT_EQ(pb, 4 * pa);  // INT32 -> INT8
}

TEST(Accelerator, GroupSizeDoesNotChangePsumTraffic) {
  // §III-B: reads+writes independent of gs.
  Rng rng(6);
  const TensorI8 x = random_i8({8, 64}, rng);
  const TensorI8 w = random_i8({64, 8}, rng);
  std::vector<i64> traffic;
  for (index_t gs = 1; gs <= 4; ++gs) {
    Accelerator acc(small_config(Dataflow::kWS, PsumConfig::apsq_int8(gs), 6));
    traffic.push_back(acc.run_gemm(x, w).stats.sram.total(Operand::kPsum));
  }
  for (size_t i = 1; i < traffic.size(); ++i) EXPECT_EQ(traffic[i], traffic[0]);
}

TEST(Accelerator, BaselineOsBitExactAgainstGoldenGemm) {
  Rng rng(21);
  const TensorI8 x = random_i8({11, 19}, rng);
  const TensorI8 w = random_i8({19, 13}, rng);
  Accelerator acc(small_config(Dataflow::kOS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  const TensorI32 ref = matmul_i8(x, w);
  for (index_t i = 0; i < ref.numel(); ++i)
    ASSERT_EQ(r.ofmap[i], static_cast<i64>(ref[i]));
}

TEST(Accelerator, OsHasZeroPsumTraffic) {
  Rng rng(22);
  const TensorI8 x = random_i8({16, 32}, rng);
  const TensorI8 w = random_i8({32, 16}, rng);
  Accelerator acc(small_config(Dataflow::kOS, PsumConfig::baseline_int32()));
  const SimResult r = acc.run_gemm(x, w);
  EXPECT_EQ(r.stats.sram.total(Operand::kPsum), 0);
  EXPECT_EQ(r.stats.dram.total(Operand::kPsum), 0);
  EXPECT_FALSE(r.stats.psum_spilled);
}

TEST(Accelerator, RejectsApsqUnderOs) {
  SimConfig cfg = small_config(Dataflow::kWS, PsumConfig::apsq_int8(2));
  cfg.dataflow = Dataflow::kOS;
  EXPECT_THROW(Accelerator{cfg}, std::logic_error);
}

TEST(Accelerator, RejectsGroupSizeBeyondRae) {
  EXPECT_THROW(Accelerator{small_config(Dataflow::kWS, PsumConfig::apsq_int8(5))},
               std::logic_error);
}

TEST(Accelerator, RejectsShapeMismatch) {
  Accelerator acc(small_config(Dataflow::kWS, PsumConfig::baseline_int32()));
  EXPECT_THROW(acc.run_gemm(TensorI8({2, 3}), TensorI8({4, 2})),
               std::logic_error);
}

TEST(Accelerator, PerTileExponentsSupported) {
  Rng rng(7);
  const TensorI8 x = random_i8({4, 12}, rng);
  const TensorI8 w = random_i8({12, 4}, rng);
  SimConfig cfg = small_config(Dataflow::kWS, PsumConfig::apsq_int8(1));
  cfg.psum_exponents = {4, 5, 6};  // one per ci tile (12/4 = 3)
  Accelerator acc(cfg);
  const SimResult r = acc.run_gemm(x, w);

  GroupedApsqInt::Options opt;
  opt.spec = QuantSpec::int8();
  opt.group_size = 1;
  opt.num_tiles = 3;
  opt.exponents = {4, 5, 6};
  GroupedApsqInt ref({4, 4}, opt);
  for (index_t t = 0; t < 3; ++t)
    ref.push(matmul_i8_krange(x, w, t * 4, (t + 1) * 4));
  const TensorI64 expect = ref.output();
  for (index_t i = 0; i < expect.numel(); ++i)
    EXPECT_EQ(r.ofmap[i], expect[i]);
}

}  // namespace
}  // namespace apsq
