// The telemetry registry's roll-up contract: per-layer LayerStats rows
// must sum back to the aggregates the existing paths report — not within
// tolerance, but bit-for-bit (EXPECT_EQ on doubles), across the same
// buffer-fit regimes sim_vs_analytic_test cross-validates. Anything less
// would let telemetry drift from the numbers the DSE actually scores.
#include <gtest/gtest.h>

#include "sim/performance.hpp"
#include "sim/stats.hpp"
#include "sim/workload_runner.hpp"

namespace apsq {
namespace {

struct CrossCase {
  Dataflow df;
  index_t m, k, n;
  PsumConfig psum;
  i64 ibuf, wbuf, obuf;
  const char* label;
};

constexpr i64 kBig = i64{1} << 24;

SimConfig config_of(const CrossCase& c) {
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = c.ibuf;
  cfg.arch.weight_buf_bytes = c.wbuf;
  cfg.arch.ofmap_buf_bytes = c.obuf;
  cfg.dataflow = c.df;
  cfg.psum = c.psum;
  return cfg;
}

Workload one_layer(const CrossCase& c) {
  Workload w;
  w.name = c.label;
  w.layers.push_back({"layer", c.m, c.k, c.n, 1});
  return w;
}

class TelemetryRollUp : public ::testing::TestWithParam<CrossCase> {};

TEST_P(TelemetryRollUp, AnalyticRowsSumToWorkloadPerformance) {
  const CrossCase& c = GetParam();
  const SimConfig cfg = config_of(c);
  const Workload w = one_layer(c);

  const WorkloadTelemetry t =
      analytic_telemetry(c.df, w, cfg.arch, c.psum);
  ASSERT_EQ(t.rows.size(), w.layers.size()) << c.label;
  EXPECT_EQ(t.source, "analytic");

  const WorkloadPerformance sum = t.roll_up();
  const WorkloadPerformance perf =
      workload_performance(c.df, w, cfg.arch, c.psum);
  EXPECT_EQ(sum.total_latency_s, perf.total_latency_s) << c.label;
  EXPECT_EQ(sum.total_compute_time_s, perf.total_compute_time_s) << c.label;
  EXPECT_EQ(sum.total_dram_time_s, perf.total_dram_time_s) << c.label;
  EXPECT_EQ(sum.total_cycles, perf.total_cycles) << c.label;
  EXPECT_EQ(sum.total_macs, perf.total_macs) << c.label;
  EXPECT_EQ(sum.mean_utilization, perf.mean_utilization) << c.label;
  EXPECT_EQ(sum.dram_bound_layers, perf.dram_bound_layers) << c.label;
  EXPECT_EQ(sum.layer_count, perf.layer_count) << c.label;
}

TEST_P(TelemetryRollUp, SimRowsSumToRunResult) {
  const CrossCase& c = GetParam();
  const SimConfig cfg = config_of(c);
  const Workload w = one_layer(c);

  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = kBig;
  const WorkloadRunResult r = run_workload(w, cfg, opt);

  const PerfConfig perf;
  const WorkloadTelemetry t = sim_telemetry(r, cfg, perf);
  ASSERT_EQ(t.rows.size(), r.layers.size()) << c.label;
  EXPECT_EQ(t.source, "sim");

  const WorkloadPerformance sum = t.roll_up();
  EXPECT_EQ(sum.total_latency_s, r.latency_s(perf)) << c.label;
  EXPECT_EQ(sum.total_cycles, r.total.cycles) << c.label;
  EXPECT_EQ(sum.total_macs, r.total.mac_ops) << c.label;
  EXPECT_EQ(t.total_dram_bytes(),
            static_cast<double>(r.total.dram.total_bytes()))
      << c.label;
  EXPECT_EQ(t.total_sram_bytes(),
            static_cast<double>(r.total.sram.total_bytes()))
      << c.label;

  // The allocation-free hot-path helpers are the roll-up, re-derived.
  const double array_macs = static_cast<double>(cfg.arch.po) *
                            static_cast<double>(cfg.arch.pci) *
                            static_cast<double>(cfg.arch.pco);
  EXPECT_EQ(run_pe_utilization(r, array_macs), sum.mean_utilization)
      << c.label;
  EXPECT_EQ(run_dram_bw_occupancy(r, perf, ComponentScale{}),
            t.dram_bw_occupancy())
      << c.label;
}

TEST_P(TelemetryRollUp, RowFieldsAreInternallyConsistent) {
  const CrossCase& c = GetParam();
  const SimConfig cfg = config_of(c);
  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = kBig;
  const WorkloadRunResult r = run_workload(one_layer(c), cfg, opt);
  const WorkloadTelemetry t = sim_telemetry(r, cfg);

  for (const LayerStats& ls : t.rows) {
    EXPECT_EQ(ls.layer_class, "layer");
    EXPECT_GE(ls.dram_bw_occupancy, 0.0) << c.label;
    EXPECT_LE(ls.dram_bw_occupancy, 1.0) << c.label;
    // Exactly one side of the overlap is exposed: a DRAM-bound layer
    // stalls compute, a compute-bound layer idles the DRAM channel.
    if (ls.perf.dram_bound) {
      EXPECT_EQ(ls.dram_idle_s, 0.0) << c.label;
      EXPECT_EQ(ls.compute_stall_s,
                ls.perf.dram_time_s - ls.perf.compute_time_s)
          << c.label;
    } else {
      EXPECT_EQ(ls.compute_stall_s, 0.0) << c.label;
      EXPECT_EQ(ls.dram_idle_s, ls.perf.compute_time_s - ls.perf.dram_time_s)
          << c.label;
    }
    // The operand split is an informational decomposition of the total.
    const double split = ls.dram_operand_bytes[0] + ls.dram_operand_bytes[1] +
                         ls.dram_operand_bytes[2] + ls.dram_operand_bytes[3];
    EXPECT_NEAR(split, ls.perf.dram_bytes,
                1e-9 * (1.0 + ls.perf.dram_bytes))
        << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, TelemetryRollUp,
    ::testing::Values(
        CrossCase{Dataflow::kWS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_resident"},
        CrossCase{Dataflow::kWS, 32, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, 256, "ws_psum_spill"},
        CrossCase{Dataflow::kWS, 64, 16, 16, PsumConfig::baseline_int32(),
                  128, kBig, kBig, "ws_ifmap_spill"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(1), kBig,
                  kBig, kBig, "ws_apsq_gs1"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "ws_apsq_gs3"},
        CrossCase{Dataflow::kWS, 32, 32, 8, PsumConfig::apsq_int8(4), kBig,
                  kBig, 256, "ws_apsq_gs4_spill"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_bits(4, 2), kBig,
                  kBig, kBig, "ws_apsq_int4"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_bits(12, 2),
                  kBig, kBig, kBig, "ws_apsq_int12"},
        CrossCase{Dataflow::kIS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "is_resident"},
        CrossCase{Dataflow::kIS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "is_weight_spill"},
        CrossCase{Dataflow::kIS, 16, 32, 64, PsumConfig::baseline_int32(),
                  kBig, kBig, 512, "is_psum_spill"},
        CrossCase{Dataflow::kIS, 12, 40, 12, PsumConfig::apsq_int8(2), kBig,
                  kBig, kBig, "is_apsq_gs2"},
        CrossCase{Dataflow::kWS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_ragged"},
        CrossCase{Dataflow::kIS, 13, 26, 9, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "is_ragged_apsq"},
        CrossCase{Dataflow::kOS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_resident"},
        CrossCase{Dataflow::kOS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "os_weight_spill"},
        CrossCase{Dataflow::kOS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_ragged"}),
    [](const ::testing::TestParamInfo<CrossCase>& param_info) {
      return std::string(param_info.param.label);
    });

TEST(TelemetryRollUpMultiLayer, RepeatedLayersSumExactly) {
  // Repeats and heterogeneous shapes exercise the shared accumulation
  // helper the way real workloads do.
  Workload w;
  w.name = "bundle";
  w.layers.push_back({"qkv_proj", 16, 32, 16, 3});
  w.layers.push_back({"attn_scores", 13, 26, 9, 2});
  w.layers.push_back({"ffn_in", 32, 32, 16, 1});

  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.dataflow = Dataflow::kWS;
  cfg.psum = PsumConfig::baseline_int32();

  const WorkloadPerformance perf =
      workload_performance(cfg.dataflow, w, cfg.arch, cfg.psum);
  const WorkloadPerformance sum =
      analytic_telemetry(cfg.dataflow, w, cfg.arch, cfg.psum).roll_up();
  EXPECT_EQ(sum.total_latency_s, perf.total_latency_s);
  EXPECT_EQ(sum.total_compute_time_s, perf.total_compute_time_s);
  EXPECT_EQ(sum.total_dram_time_s, perf.total_dram_time_s);
  EXPECT_EQ(sum.total_cycles, perf.total_cycles);
  EXPECT_EQ(sum.total_macs, perf.total_macs);
  EXPECT_EQ(sum.mean_utilization, perf.mean_utilization);
  EXPECT_EQ(sum.dram_bound_layers, perf.dram_bound_layers);
  EXPECT_EQ(sum.layer_count, perf.layer_count);

  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = kBig;
  const WorkloadRunResult r = run_workload(w, cfg, opt);
  const PerfConfig pc;
  const WorkloadPerformance ssum = sim_telemetry(r, cfg, pc).roll_up();
  EXPECT_EQ(ssum.total_latency_s, r.latency_s(pc));
  EXPECT_EQ(ssum.total_cycles, r.total.cycles);
  EXPECT_EQ(ssum.total_macs, r.total.mac_ops);
  EXPECT_EQ(ssum.layer_count, index_t{6});  // repeats counted as instances
}

TEST(LayerClassOf, CollapsesInstanceIndicesAndStageTags) {
  // Stage prefixes and trailing instance indices collapse; kernel-shape
  // suffixes and the functionally distinct fc1/fc2 pair do not.
  EXPECT_EQ(layer_class_of("qkv_proj"), "qkv_proj");
  EXPECT_EQ(layer_class_of("patch_embed1"), "patch_embed");
  EXPECT_EQ(layer_class_of("patch_embed4"), "patch_embed");
  EXPECT_EQ(layer_class_of("head_linear3"), "head_linear");
  EXPECT_EQ(layer_class_of("head_in3"), "head_in");
  EXPECT_EQ(layer_class_of("s1_q_proj"), "q_proj");
  EXPECT_EQ(layer_class_of("s4_q_proj"), "q_proj");
  EXPECT_EQ(layer_class_of("s3_evit_qkv"), "evit_qkv");
  EXPECT_EQ(layer_class_of("s1_mb_dw3x3"), "mb_dw3x3");
  EXPECT_EQ(layer_class_of("s3_evit_aggreg5x5"), "evit_aggreg5x5");
  EXPECT_EQ(layer_class_of("s2_mlp_fc1"), "mlp_fc1");
  EXPECT_EQ(layer_class_of("s2_mlp_fc2"), "mlp_fc2");
  EXPECT_EQ(layer_class_of("stem_conv"), "stem_conv");
  EXPECT_EQ(layer_class_of("123"), "123");   // all digits: unchanged
  EXPECT_EQ(layer_class_of("layer"), "layer");
}

}  // namespace
}  // namespace apsq
