// Cross-validation: the loop-nest simulator's measured byte traffic must
// equal the closed-form access counts of Eqs. (3)–(6) exactly, for every
// dataflow / PSUM configuration / buffer-fit regime.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "energy/access_counts.hpp"
#include "sim/accelerator.hpp"

namespace apsq {
namespace {

TensorI8 random_i8(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

struct SweepCase {
  Dataflow df;
  index_t m, k, n;
  PsumConfig psum;
  i64 ibuf, wbuf, obuf;  // buffer sizes chosen to exercise fit regimes
  const char* label;
};

class CountsSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CountsSweep, SimTrafficEqualsClosedForm) {
  const SweepCase& c = GetParam();
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = c.ibuf;
  cfg.arch.weight_buf_bytes = c.wbuf;
  cfg.arch.ofmap_buf_bytes = c.obuf;
  cfg.dataflow = c.df;
  cfg.psum = c.psum;
  cfg.psum_exponents = {5};

  Rng rng(2024);
  const TensorI8 x = random_i8({c.m, c.k}, rng);
  const TensorI8 w = random_i8({c.k, c.n}, rng);

  Accelerator acc(cfg);
  const SimResult r = acc.run_gemm(x, w);

  const LayerShape layer{"sweep", c.m, c.k, c.n, 1};
  const AccessCounts counts =
      compute_access_counts(c.df, layer, cfg.arch, c.psum);

  const i64 si = c.m * c.k, sw = c.k * c.n, so = c.m * c.n;
  const double pbytes = c.psum.bytes_per_elem();

  EXPECT_EQ(r.stats.sram.total(Operand::kIfmap), counts.ifmap_sram * si)
      << c.label;
  EXPECT_EQ(r.stats.dram.total(Operand::kIfmap), counts.ifmap_dram * si)
      << c.label;
  EXPECT_EQ(r.stats.sram.total(Operand::kWeight), counts.weight_sram * sw)
      << c.label;
  EXPECT_EQ(r.stats.dram.total(Operand::kWeight), counts.weight_dram * sw)
      << c.label;
  EXPECT_EQ(r.stats.sram.total(Operand::kPsum),
            static_cast<i64>(counts.psum_sram * so * pbytes))
      << c.label;
  EXPECT_EQ(r.stats.dram.total(Operand::kPsum),
            static_cast<i64>(counts.psum_dram * so * pbytes))
      << c.label;
  EXPECT_EQ(r.stats.sram.total(Operand::kOfmap), counts.ofmap_sram * so)
      << c.label;
  EXPECT_EQ(r.stats.dram.total(Operand::kOfmap), counts.ofmap_dram * so)
      << c.label;
  EXPECT_EQ(r.stats.psum_spilled, !counts.psum_fits) << c.label;
}

constexpr i64 kBig = i64{1} << 24;

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, CountsSweep,
    ::testing::Values(
        // WS, everything resident.
        SweepCase{Dataflow::kWS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_resident"},
        // WS, PSUM spills (ofmap buffer smaller than 4·m·pco).
        SweepCase{Dataflow::kWS, 32, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, 256, "ws_psum_spill"},
        // WS, ifmap tile spills (m·pci > ibuf).
        SweepCase{Dataflow::kWS, 64, 16, 16, PsumConfig::baseline_int32(),
                  128, kBig, kBig, "ws_ifmap_spill"},
        // WS APSQ, resident, gs variants.
        SweepCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(1), kBig,
                  kBig, kBig, "ws_apsq_gs1"},
        SweepCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "ws_apsq_gs3"},
        // WS APSQ where the gs multiplier causes the spill: footprint
        // gs·m·pco: gs=4 · 32 · 4 = 512 > 256.
        SweepCase{Dataflow::kWS, 32, 32, 8, PsumConfig::apsq_int8(4), kBig,
                  kBig, 256, "ws_apsq_gs4_spill"},
        // IS, weights resident.
        SweepCase{Dataflow::kIS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "is_resident"},
        // IS, weights spill (k·n > wbuf).
        SweepCase{Dataflow::kIS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "is_weight_spill"},
        // IS, PSUM spills (4·n·po > obuf).
        SweepCase{Dataflow::kIS, 16, 32, 64, PsumConfig::baseline_int32(),
                  kBig, kBig, 512, "is_psum_spill"},
        // IS APSQ resident.
        SweepCase{Dataflow::kIS, 12, 40, 12, PsumConfig::apsq_int8(2), kBig,
                  kBig, kBig, "is_apsq_gs2"},
        // Ragged shapes (dims not multiples of the array).
        SweepCase{Dataflow::kWS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_ragged"},
        SweepCase{Dataflow::kIS, 13, 26, 9, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "is_ragged_apsq"},
        // OS: zero PSUM traffic by construction; resident and spilled
        // operand regimes.
        SweepCase{Dataflow::kOS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_resident"},
        SweepCase{Dataflow::kOS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "os_weight_spill"},
        SweepCase{Dataflow::kOS, 64, 16, 16, PsumConfig::baseline_int32(),
                  128, kBig, kBig, "os_ifmap_spill"},
        SweepCase{Dataflow::kOS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_ragged"}));

}  // namespace
}  // namespace apsq
