#include "sim/pe_array.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/matmul.hpp"

namespace apsq {
namespace {

TensorI8 random_i8(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

TEST(PeArray, FullTileMatchesReference) {
  Rng rng(1);
  PeArray pe(16, 8, 8);
  const TensorI8 a = random_i8({16, 8}, rng);
  const TensorI8 w = random_i8({8, 8}, rng);
  TensorI32 psum({16, 8}, 0);
  pe.mac_tile(a, w, psum);
  const TensorI32 ref = matmul_i8(a, w);
  for (index_t i = 0; i < psum.numel(); ++i) EXPECT_EQ(psum[i], ref[i]);
}

TEST(PeArray, AccumulatesIntoExistingPsum) {
  PeArray pe(2, 2, 2);
  TensorI8 a({2, 2}, std::vector<i8>{1, 1, 1, 1});
  TensorI8 w({2, 2}, std::vector<i8>{1, 1, 1, 1});
  TensorI32 psum({2, 2}, 10);
  pe.mac_tile(a, w, psum);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(psum[i], 12);
}

TEST(PeArray, RaggedTilesAccepted) {
  Rng rng(2);
  PeArray pe(16, 8, 8);
  const TensorI8 a = random_i8({3, 5}, rng);
  const TensorI8 w = random_i8({5, 2}, rng);
  TensorI32 psum({3, 2}, 0);
  pe.mac_tile(a, w, psum);
  const TensorI32 ref = matmul_i8(a, w);
  for (index_t i = 0; i < psum.numel(); ++i) EXPECT_EQ(psum[i], ref[i]);
}

TEST(PeArray, OversizedTileRejected) {
  PeArray pe(4, 4, 4);
  TensorI8 a({5, 4});
  TensorI8 w({4, 4});
  TensorI32 psum({5, 4});
  EXPECT_THROW(pe.mac_tile(a, w, psum), std::logic_error);
}

TEST(PeArray, CountsCyclesAndMacs) {
  Rng rng(3);
  PeArray pe(4, 4, 4);
  TensorI32 psum({4, 4}, 0);
  for (int i = 0; i < 5; ++i)
    pe.mac_tile(random_i8({4, 4}, rng), random_i8({4, 4}, rng), psum);
  EXPECT_EQ(pe.cycles(), 5);
  EXPECT_EQ(pe.mac_ops(), 5 * 4 * 4 * 4);
  pe.reset();
  EXPECT_EQ(pe.cycles(), 0);
  EXPECT_EQ(pe.mac_ops(), 0);
}

TEST(PeArray, RaggedMacCountIsExact) {
  PeArray pe(16, 8, 8);
  TensorI8 a({3, 5}), w({5, 2});
  TensorI32 psum({3, 2});
  pe.mac_tile(a, w, psum);
  EXPECT_EQ(pe.mac_ops(), 3 * 5 * 2);
}

}  // namespace
}  // namespace apsq
