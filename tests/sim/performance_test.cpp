#include "sim/performance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "models/bert.hpp"
#include "models/llama2.hpp"

namespace apsq {
namespace {

AcceleratorConfig arch() { return AcceleratorConfig::dnn_default(); }

TEST(LayerPerformance, FullTilesReachFullUtilization) {
  // 128 rows / 16, 768 ci / 8, 3072 co / 8 — all exact multiples.
  const LayerShape layer{"ffn_in", 128, 768, 3072, 1};
  const LayerPerformance p = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::baseline_int32());
  EXPECT_EQ(p.tile_cycles, (128 / 16) * (768 / 8) * (3072 / 8));
  EXPECT_DOUBLE_EQ(p.utilization, 1.0);
}

TEST(LayerPerformance, RaggedTilesLowerUtilization) {
  const LayerShape layer{"ragged", 17, 9, 9, 1};
  const LayerPerformance p = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::baseline_int32());
  EXPECT_LT(p.utilization, 1.0);
  EXPECT_GT(p.utilization, 0.0);
}

TEST(LayerPerformance, ComputeTimeMatchesClock) {
  const LayerShape layer{"ffn_in", 128, 768, 3072, 1};
  PerfConfig pc;
  pc.clock_hz = 250e6;
  const LayerPerformance p = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::baseline_int32(), pc);
  EXPECT_NEAR(p.compute_time_s,
              static_cast<double>(p.tile_cycles) / 250e6, 1e-12);
}

TEST(LayerPerformance, PsumSpillMakesLayerMoreDramBound) {
  // A spilling layer moves PSUMs through DRAM on every accumulation step.
  const LayerShape layer{"s1", 16384, 32, 128, 1};
  const LayerPerformance base = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::baseline_int32());
  const LayerPerformance apsq = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::apsq_int8(1));
  EXPECT_GT(base.dram_bytes, apsq.dram_bytes * 5.0);
  EXPECT_TRUE(base.dram_bound);
}

TEST(LayerPerformance, LatencyIsMaxOfComputeAndDram) {
  const LayerShape layer{"l", 64, 64, 64, 1};
  const LayerPerformance p = layer_performance(
      Dataflow::kWS, layer, arch(), PsumConfig::baseline_int32());
  EXPECT_DOUBLE_EQ(p.latency_s, std::max(p.compute_time_s, p.dram_time_s));
}

TEST(WorkloadPerformance, BertRollUp) {
  const Workload bert = bert_base_workload();
  const WorkloadPerformance p = workload_performance(
      Dataflow::kWS, bert, arch(), PsumConfig::baseline_int32());
  EXPECT_EQ(p.total_macs, bert.total_macs());
  EXPECT_GT(p.total_latency_s, 0.0);
  EXPECT_GE(p.total_latency_s, p.total_compute_time_s - 1e-12);
  EXPECT_GT(p.mean_utilization, 0.5);
  EXPECT_LE(p.mean_utilization, 1.0);
  EXPECT_GT(p.effective_gmacs(), 0.0);
}

TEST(LayerPerformance, ZeroDimensionLayerIsRejectedNotNaN) {
  // A degenerate layer must never leak 0/0 NaN into utilization (and from
  // there into the MAC-weighted roll-up and the Objectives): the
  // access-count model rejects it with a diagnostic instead.
  for (const LayerShape& layer :
       {LayerShape{"r0", 0, 64, 64, 1}, LayerShape{"ci0", 64, 0, 64, 1},
        LayerShape{"co0", 64, 64, 0, 1}}) {
    EXPECT_THROW(layer_performance(Dataflow::kWS, layer, arch(),
                                   PsumConfig::baseline_int32()),
                 std::logic_error)
        << layer.name;
  }
}

TEST(LayerPerformance, RejectsZeroOrNonFinitePerfConfig) {
  // inf/NaN from a zero bandwidth or clock would make Pareto dominance
  // non-transitive downstream; the model refuses the config instead.
  const LayerShape layer{"l", 64, 64, 64, 1};
  for (const double bad :
       {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    PerfConfig pc;
    pc.dram_bandwidth_gbps = bad;
    EXPECT_THROW(layer_performance(Dataflow::kWS, layer, arch(),
                                   PsumConfig::baseline_int32(), pc),
                 std::logic_error)
        << "bandwidth " << bad;
    PerfConfig pc2;
    pc2.clock_hz = bad;
    EXPECT_THROW(layer_performance(Dataflow::kWS, layer, arch(),
                                   PsumConfig::baseline_int32(), pc2),
                 std::logic_error)
        << "clock " << bad;
  }
}

TEST(WorkloadPerformance, EmptyWorkloadRollsUpToFiniteZeros) {
  const Workload empty;
  const WorkloadPerformance p = workload_performance(
      Dataflow::kWS, empty, arch(), PsumConfig::baseline_int32());
  EXPECT_EQ(p.total_macs, 0);
  EXPECT_EQ(p.mean_utilization, 0.0);
  EXPECT_EQ(p.effective_gmacs(), 0.0);
  EXPECT_TRUE(std::isfinite(p.total_latency_s));
}

TEST(WorkloadPerformance, ApsqReducesLatencyOnSpillingModels) {
  // Removing PSUM DRAM spill shortens the memory-bound layers.
  const Workload llm = llama2_7b_workload(4096);
  const AcceleratorConfig la = AcceleratorConfig::llm_default();
  const WorkloadPerformance base = workload_performance(
      Dataflow::kWS, llm, la, PsumConfig::baseline_int32());
  const WorkloadPerformance apsq =
      workload_performance(Dataflow::kWS, llm, la, PsumConfig::apsq_int8(1));
  EXPECT_LT(apsq.total_latency_s, base.total_latency_s);
}

TEST(WorkloadPerformance, ThroughputBoundedByArrayPeak) {
  const Workload bert = bert_base_workload();
  const WorkloadPerformance p = workload_performance(
      Dataflow::kOS, bert, arch(), PsumConfig::baseline_int32());
  const double peak_gmacs = 16.0 * 8 * 8 * 250e6 / 1e9;
  EXPECT_LE(p.effective_gmacs(), peak_gmacs + 1e-9);
}

}  // namespace
}  // namespace apsq
