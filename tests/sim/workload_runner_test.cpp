#include "sim/workload_runner.hpp"

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "models/bert.hpp"

namespace apsq {
namespace {

SimConfig small_arch(Dataflow df, PsumConfig psum) {
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = 64 * 1024;
  cfg.arch.ofmap_buf_bytes = 64 * 1024;
  cfg.arch.weight_buf_bytes = 32 * 1024;
  cfg.dataflow = df;
  cfg.psum = psum;
  return cfg;
}

TEST(ScaleLayer, DividesAndClamps) {
  WorkloadRunOptions opt;
  opt.shrink = 8;
  opt.max_dim = 100;
  const LayerShape l{"x", 16384, 768, 24, 3};
  const LayerShape s = scale_layer(l, opt);
  EXPECT_EQ(s.rows, 100);  // 2048 clamped
  EXPECT_EQ(s.ci, 96);
  EXPECT_EQ(s.co, 3);      // 24/8
  EXPECT_EQ(s.repeat, 3);  // repeat preserved
}

TEST(ScaleLayer, NeverBelowOne) {
  WorkloadRunOptions opt;
  opt.shrink = 100;
  const LayerShape s = scale_layer({"x", 8, 8, 8, 1}, opt);
  EXPECT_EQ(s.rows, 1);
  EXPECT_EQ(s.ci, 1);
  EXPECT_EQ(s.co, 1);
}

TEST(WorkloadRunner, BertScaledRunProducesStats) {
  const Workload bert = bert_base_workload();
  WorkloadRunOptions opt;
  opt.shrink = 16;
  opt.max_dim = 64;
  const WorkloadRunResult r = run_workload(
      bert, small_arch(Dataflow::kWS, PsumConfig::baseline_int32()), opt);
  EXPECT_EQ(r.layers.size(), bert.layers.size());
  EXPECT_GT(r.total.cycles, 0);
  EXPECT_GT(r.total.mac_ops, 0);
  EXPECT_GT(r.energy_pj(), 0.0);
}

TEST(WorkloadRunner, PerLayerTrafficMatchesAnalyticalAtScaledShape) {
  // The contract that makes scaled simulation meaningful: every layer's
  // measured traffic equals the closed-form counts for its scaled shape.
  const Workload bert = bert_base_workload();
  const SimConfig cfg = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(2));
  WorkloadRunOptions opt;
  opt.shrink = 32;
  opt.max_dim = 48;
  const WorkloadRunResult r = run_workload(bert, cfg, opt);
  for (const auto& lr : r.layers) {
    const AccessCounts n =
        compute_access_counts(cfg.dataflow, lr.scaled_shape, cfg.arch, cfg.psum);
    const i64 si = lr.scaled_shape.ifmap_elems();
    const i64 so = lr.scaled_shape.ofmap_elems();
    EXPECT_EQ(lr.stats.sram.total(Operand::kIfmap), n.ifmap_sram * si)
        << lr.name;
    EXPECT_EQ(lr.stats.sram.total(Operand::kPsum),
              static_cast<i64>(n.psum_sram * so * cfg.psum.bytes_per_elem()))
        << lr.name;
  }
}

TEST(WorkloadRunner, RepeatMultipliesTraffic) {
  Workload w;
  w.name = "rep";
  w.layers.push_back({"l", 32, 32, 32, 4});
  Workload w1;
  w1.name = "one";
  w1.layers.push_back({"l", 32, 32, 32, 1});
  const SimConfig cfg = small_arch(Dataflow::kIS, PsumConfig::baseline_int32());
  WorkloadRunOptions opt;
  opt.shrink = 1;
  const auto r4 = run_workload(w, cfg, opt);
  const auto r1 = run_workload(w1, cfg, opt);
  EXPECT_EQ(r4.total.cycles, 4 * r1.total.cycles);
  EXPECT_EQ(r4.total.sram.total_bytes(), 4 * r1.total.sram.total_bytes());
}

TEST(WorkloadRunner, ApsqReducesMeasuredEnergy) {
  Workload w;
  w.name = "spilly";
  // rows·pco·4 bytes = 32 KB > 16 KB ofmap buffer -> INT32 spills.
  w.layers.push_back({"big", 2048, 64, 32, 1});
  SimConfig base = small_arch(Dataflow::kWS, PsumConfig::baseline_int32());
  base.arch.ofmap_buf_bytes = 16 * 1024;
  SimConfig apsq = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(1));
  apsq.arch.ofmap_buf_bytes = 16 * 1024;
  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = 4096;
  const double eb = run_workload(w, base, opt).energy_pj();
  const double ea = run_workload(w, apsq, opt).energy_pj();
  EXPECT_GT(eb, 2.0 * ea);
}

TEST(WorkloadRunner, PsqPriorWorkKeepsBaselineTraffic) {
  Workload w;
  w.name = "psq";
  w.layers.push_back({"l", 64, 64, 32, 1});
  const SimConfig base = small_arch(Dataflow::kWS, PsumConfig::baseline_int32());
  SimConfig psq = base;
  psq.psq_prior_work = true;
  WorkloadRunOptions opt;
  opt.shrink = 1;
  const auto rb = run_workload(w, base, opt);
  const auto rp = run_workload(w, psq, opt);
  // §I: PSQ narrows the converter but stores full-precision PSUMs — the
  // memory traffic does not move.
  EXPECT_EQ(rb.total.sram.total(Operand::kPsum),
            rp.total.sram.total(Operand::kPsum));
  EXPECT_EQ(rb.total.dram.total_bytes(), rp.total.dram.total_bytes());
}

}  // namespace
}  // namespace apsq
