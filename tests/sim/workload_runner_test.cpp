#include "sim/workload_runner.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "energy/energy_model.hpp"
#include "models/bert.hpp"

namespace apsq {
namespace {

SimConfig small_arch(Dataflow df, PsumConfig psum) {
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = 64 * 1024;
  cfg.arch.ofmap_buf_bytes = 64 * 1024;
  cfg.arch.weight_buf_bytes = 32 * 1024;
  cfg.dataflow = df;
  cfg.psum = psum;
  return cfg;
}

TEST(ScaleLayer, DividesAndClamps) {
  WorkloadRunOptions opt;
  opt.shrink = 8;
  opt.max_dim = 100;
  const LayerShape l{"x", 16384, 768, 24, 3};
  const LayerShape s = scale_layer(l, opt);
  EXPECT_EQ(s.rows, 100);  // 2048 clamped
  EXPECT_EQ(s.ci, 96);
  EXPECT_EQ(s.co, 3);      // 24/8
  EXPECT_EQ(s.repeat, 3);  // repeat preserved
}

TEST(ScaleLayer, NeverBelowOne) {
  WorkloadRunOptions opt;
  opt.shrink = 100;
  const LayerShape s = scale_layer({"x", 8, 8, 8, 1}, opt);
  EXPECT_EQ(s.rows, 1);
  EXPECT_EQ(s.ci, 1);
  EXPECT_EQ(s.co, 1);
}

TEST(WorkloadRunner, BertScaledRunProducesStats) {
  const Workload bert = bert_base_workload();
  WorkloadRunOptions opt;
  opt.shrink = 16;
  opt.max_dim = 64;
  const WorkloadRunResult r = run_workload(
      bert, small_arch(Dataflow::kWS, PsumConfig::baseline_int32()), opt);
  EXPECT_EQ(r.layers.size(), bert.layers.size());
  EXPECT_GT(r.total.cycles, 0);
  EXPECT_GT(r.total.mac_ops, 0);
  EXPECT_GT(r.energy_pj(), 0.0);
}

TEST(WorkloadRunner, PerLayerTrafficMatchesAnalyticalAtScaledShape) {
  // The contract that makes scaled simulation meaningful: every layer's
  // measured traffic equals the closed-form counts for its scaled shape.
  const Workload bert = bert_base_workload();
  const SimConfig cfg = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(2));
  WorkloadRunOptions opt;
  opt.shrink = 32;
  opt.max_dim = 48;
  const WorkloadRunResult r = run_workload(bert, cfg, opt);
  for (const auto& lr : r.layers) {
    const AccessCounts n =
        compute_access_counts(cfg.dataflow, lr.scaled_shape, cfg.arch, cfg.psum);
    const i64 si = lr.scaled_shape.ifmap_elems();
    const i64 so = lr.scaled_shape.ofmap_elems();
    EXPECT_EQ(lr.stats.sram.total(Operand::kIfmap), n.ifmap_sram * si)
        << lr.name;
    EXPECT_EQ(lr.stats.sram.total(Operand::kPsum),
              static_cast<i64>(n.psum_sram * so * cfg.psum.bytes_per_elem()))
        << lr.name;
  }
}

TEST(WorkloadRunner, RepeatMultipliesTraffic) {
  Workload w;
  w.name = "rep";
  w.layers.push_back({"l", 32, 32, 32, 4});
  Workload w1;
  w1.name = "one";
  w1.layers.push_back({"l", 32, 32, 32, 1});
  const SimConfig cfg = small_arch(Dataflow::kIS, PsumConfig::baseline_int32());
  WorkloadRunOptions opt;
  opt.shrink = 1;
  const auto r4 = run_workload(w, cfg, opt);
  const auto r1 = run_workload(w1, cfg, opt);
  EXPECT_EQ(r4.total.cycles, 4 * r1.total.cycles);
  EXPECT_EQ(r4.total.sram.total_bytes(), 4 * r1.total.sram.total_bytes());
}

TEST(WorkloadRunner, ApsqReducesMeasuredEnergy) {
  Workload w;
  w.name = "spilly";
  // rows·pco·4 bytes = 32 KB > 16 KB ofmap buffer -> INT32 spills.
  w.layers.push_back({"big", 2048, 64, 32, 1});
  SimConfig base = small_arch(Dataflow::kWS, PsumConfig::baseline_int32());
  base.arch.ofmap_buf_bytes = 16 * 1024;
  SimConfig apsq = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(1));
  apsq.arch.ofmap_buf_bytes = 16 * 1024;
  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = 4096;
  const double eb = run_workload(w, base, opt).energy_pj();
  const double ea = run_workload(w, apsq, opt).energy_pj();
  EXPECT_GT(eb, 2.0 * ea);
}

TEST(CalibratePsumExponent, MatchesNearestPow2Rule) {
  // max |psum| = 127 → needed scale 1 → exponent 0.
  TensorI32 t({2, 2}, 0);
  t[0] = 127;
  EXPECT_EQ(calibrate_psum_exponent(t), 0);
  // max 127·16 → log2(16) = 4.
  t[0] = 127 * 16;
  EXPECT_EQ(calibrate_psum_exponent(t), 4);
  // Negative extrema count via |·|.
  t[0] = -(127 * 16);
  EXPECT_EQ(calibrate_psum_exponent(t), 4);
}

TEST(CalibratePsumExponent, ClampedToRepresentableRange) {
  // All-zero outputs must not push the exponent below 0 …
  TensorI32 zeros({2, 2}, 0);
  EXPECT_EQ(calibrate_psum_exponent(zeros), 0);
  EXPECT_EQ(psum_exponent_for_max(0), 0);
  // … and magnitudes beyond 127·2^31 must clamp at the top of the RAE
  // shifter's range (dequantize is a left shift of an i32 code; exponents
  // are checked < 32 downstream — without the clamp this CHECK-crashes).
  EXPECT_EQ(psum_exponent_for_max(i64{1} << 62), 31);
  EXPECT_EQ(psum_exponent_for_max(std::numeric_limits<i64>::max()), 31);
  // INT32-range extrema stay comfortably inside.
  TensorI32 huge({2, 2}, 0);
  huge[0] = std::numeric_limits<i32>::max();
  const int e = calibrate_psum_exponent(huge);
  EXPECT_LE(e, 31);
  EXPECT_GE(e, 0);
}

TEST(WorkloadRunner, CalibrationMemoizedPerShape) {
  // Four layers, two distinct scaled shapes: the exact-GEMM calibration
  // runs once per shape, not once per layer.
  Workload w;
  w.name = "memo";
  w.layers.push_back({"a0", 32, 32, 32, 1});
  w.layers.push_back({"a1", 32, 32, 32, 1});
  w.layers.push_back({"b", 32, 64, 32, 1});
  w.layers.push_back({"a2", 32, 32, 32, 2});
  const SimConfig cfg = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(2));
  WorkloadRunOptions opt;
  opt.shrink = 1;
  const WorkloadRunResult r = run_workload(w, cfg, opt);
  EXPECT_EQ(r.calibration_count, 2);
  // Identical shapes draw identical operands, so their per-layer stats —
  // not just the traffic, which is shape-driven anyway — coincide.
  EXPECT_EQ(r.layers[0].stats.sram.total_bytes(),
            r.layers[1].stats.sram.total_bytes());
  EXPECT_EQ(r.layers[0].stats.cycles, r.layers[3].stats.cycles);
}

TEST(WorkloadRunner, BaselineRunsNeedNoCalibration) {
  Workload w;
  w.name = "base";
  w.layers.push_back({"l", 32, 32, 32, 1});
  const SimConfig cfg = small_arch(Dataflow::kWS, PsumConfig::baseline_int32());
  WorkloadRunOptions opt;
  opt.shrink = 1;
  EXPECT_EQ(run_workload(w, cfg, opt).calibration_count, 0);
}

TEST(WorkloadRunner, ParallelMatchesSerialExactly) {
  // Layer-parallel execution must be byte-identical to the serial run:
  // per-layer stats, aggregated totals, and derived energy/latency.
  const Workload bert = bert_base_workload();
  const SimConfig cfg = small_arch(Dataflow::kWS, PsumConfig::apsq_int8(2));
  WorkloadRunOptions serial_opt;
  serial_opt.shrink = 32;
  serial_opt.max_dim = 48;
  serial_opt.threads = 1;
  const WorkloadRunResult serial = run_workload(bert, cfg, serial_opt);

  for (int threads : {2, 4}) {
    WorkloadRunOptions par_opt = serial_opt;
    par_opt.threads = threads;
    const WorkloadRunResult par = run_workload(bert, cfg, par_opt);
    ASSERT_EQ(par.layers.size(), serial.layers.size());
    for (size_t i = 0; i < par.layers.size(); ++i) {
      EXPECT_EQ(par.layers[i].stats.cycles, serial.layers[i].stats.cycles);
      EXPECT_EQ(par.layers[i].stats.sram.total_bytes(),
                serial.layers[i].stats.sram.total_bytes());
      EXPECT_EQ(par.layers[i].stats.dram.total_bytes(),
                serial.layers[i].stats.dram.total_bytes());
    }
    EXPECT_EQ(par.total.cycles, serial.total.cycles);
    EXPECT_EQ(par.total.mac_ops, serial.total.mac_ops);
    EXPECT_EQ(par.energy_pj(), serial.energy_pj());     // bit-identical
    EXPECT_EQ(par.latency_s(), serial.latency_s());
  }
}

TEST(WorkloadRunner, PsqPriorWorkKeepsBaselineTraffic) {
  Workload w;
  w.name = "psq";
  w.layers.push_back({"l", 64, 64, 32, 1});
  const SimConfig base = small_arch(Dataflow::kWS, PsumConfig::baseline_int32());
  SimConfig psq = base;
  psq.psq_prior_work = true;
  WorkloadRunOptions opt;
  opt.shrink = 1;
  const auto rb = run_workload(w, base, opt);
  const auto rp = run_workload(w, psq, opt);
  // §I: PSQ narrows the converter but stores full-precision PSUMs — the
  // memory traffic does not move.
  EXPECT_EQ(rb.total.sram.total(Operand::kPsum),
            rp.total.sram.total(Operand::kPsum));
  EXPECT_EQ(rb.total.dram.total_bytes(), rp.total.dram.total_bytes());
}

}  // namespace
}  // namespace apsq
