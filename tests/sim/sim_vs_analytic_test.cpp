// Cross-validation of the two DSE fidelity backends: for the same
// buffer-fit regimes counts_vs_analytical_test sweeps, the simulator's
// *measured* energy (Eq. 1 over measured traffic) and latency must agree
// with the closed-form models evaluated at the same (scaled) shape.
//
// Traffic is element-exact (counts_vs_analytical_test), so the only
// admissible daylight is PSUM byte rounding: the simulator charges whole
// tiles at ⌈elems·bits/8⌉ bytes while the analytic model charges
// fractional bytes — sub-percent at these shapes. Configurations whose
// per-tile byte count is exact (8/16/32-bit PSUMs) must match to
// floating-point precision.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "sim/performance.hpp"
#include "sim/workload_runner.hpp"

namespace apsq {
namespace {

struct CrossCase {
  Dataflow df;
  index_t m, k, n;
  PsumConfig psum;
  i64 ibuf, wbuf, obuf;
  const char* label;
};

constexpr i64 kBig = i64{1} << 24;

SimConfig config_of(const CrossCase& c) {
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = c.ibuf;
  cfg.arch.weight_buf_bytes = c.wbuf;
  cfg.arch.ofmap_buf_bytes = c.obuf;
  cfg.dataflow = c.df;
  cfg.psum = c.psum;
  return cfg;
}

Workload one_layer(const CrossCase& c) {
  Workload w;
  w.name = c.label;
  w.layers.push_back({"layer", c.m, c.k, c.n, 1});
  return w;
}

class CrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossValidation, SimEnergyMatchesAnalytic) {
  const CrossCase& c = GetParam();
  const SimConfig cfg = config_of(c);
  const Workload w = one_layer(c);

  WorkloadRunOptions opt;
  opt.shrink = 1;  // simulate the exact analytic shape
  opt.max_dim = kBig;
  const WorkloadRunResult r = run_workload(w, cfg, opt);

  const double analytic =
      workload_energy(c.df, w, cfg.arch, c.psum).total_pj();
  const double sim = r.energy_pj();
  ASSERT_GT(analytic, 0.0) << c.label;

  // Whole-tile PSUM byte rounding is the only modelled difference.
  const bool exact_bytes = c.psum.psum_bits % 8 == 0;
  const double tol = exact_bytes ? 1e-9 : 0.01;
  EXPECT_NEAR(sim / analytic, 1.0, tol) << c.label;
}

TEST_P(CrossValidation, SimLatencyMatchesPerformanceModel) {
  const CrossCase& c = GetParam();
  const SimConfig cfg = config_of(c);
  const Workload w = one_layer(c);

  WorkloadRunOptions opt;
  opt.shrink = 1;
  opt.max_dim = kBig;
  const WorkloadRunResult r = run_workload(w, cfg, opt);

  const WorkloadPerformance perf =
      workload_performance(c.df, w, cfg.arch, c.psum);
  // Tile-issue cycles are exact by construction.
  EXPECT_EQ(r.total.cycles, perf.total_cycles) << c.label;
  EXPECT_EQ(r.total.mac_ops, perf.total_macs) << c.label;
  const bool exact_bytes = c.psum.psum_bits % 8 == 0;
  EXPECT_NEAR(r.latency_s() / perf.total_latency_s, 1.0,
              exact_bytes ? 1e-9 : 0.01)
      << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, CrossValidation,
    ::testing::Values(
        CrossCase{Dataflow::kWS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_resident"},
        CrossCase{Dataflow::kWS, 32, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, 256, "ws_psum_spill"},
        CrossCase{Dataflow::kWS, 64, 16, 16, PsumConfig::baseline_int32(),
                  128, kBig, kBig, "ws_ifmap_spill"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(1), kBig,
                  kBig, kBig, "ws_apsq_gs1"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "ws_apsq_gs3"},
        CrossCase{Dataflow::kWS, 32, 32, 8, PsumConfig::apsq_int8(4), kBig,
                  kBig, 256, "ws_apsq_gs4_spill"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_bits(4, 2), kBig,
                  kBig, kBig, "ws_apsq_int4"},
        CrossCase{Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_bits(12, 2),
                  kBig, kBig, kBig, "ws_apsq_int12"},
        CrossCase{Dataflow::kIS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "is_resident"},
        CrossCase{Dataflow::kIS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "is_weight_spill"},
        CrossCase{Dataflow::kIS, 16, 32, 64, PsumConfig::baseline_int32(),
                  kBig, kBig, 512, "is_psum_spill"},
        CrossCase{Dataflow::kIS, 12, 40, 12, PsumConfig::apsq_int8(2), kBig,
                  kBig, kBig, "is_apsq_gs2"},
        CrossCase{Dataflow::kWS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "ws_ragged"},
        CrossCase{Dataflow::kIS, 13, 26, 9, PsumConfig::apsq_int8(3), kBig,
                  kBig, kBig, "is_ragged_apsq"},
        CrossCase{Dataflow::kOS, 16, 32, 16, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_resident"},
        CrossCase{Dataflow::kOS, 32, 32, 32, PsumConfig::baseline_int32(),
                  kBig, 512, kBig, "os_weight_spill"},
        CrossCase{Dataflow::kOS, 13, 26, 9, PsumConfig::baseline_int32(),
                  kBig, kBig, kBig, "os_ragged"}),
    [](const ::testing::TestParamInfo<CrossCase>& param_info) {
      return std::string(param_info.param.label);
    });

}  // namespace
}  // namespace apsq
