#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

#include "models/bert.hpp"

namespace apsq {
namespace {

AcceleratorConfig arch() { return AcceleratorConfig::dnn_default(); }
LayerShape ffn1() { return {"ffn_in", 128, 768, 3072, 1}; }

TEST(EnergyBreakdown, ComponentsSumToTotal) {
  const EnergyBreakdown e = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                         PsumConfig::baseline_int32());
  EXPECT_NEAR(e.total_pj(),
              e.ifmap_pj + e.weight_pj + e.psum_pj + e.ofmap_pj + e.mac_pj,
              1e-6);
  // Memory split must cover all data-movement energy.
  EXPECT_NEAR(e.sram_pj + e.dram_pj,
              e.ifmap_pj + e.weight_pj + e.psum_pj + e.ofmap_pj, 1e-3);
}

TEST(EnergyBreakdown, Eq1Composition) {
  // Recompute Eq. (1) by hand from the access counts for one layer.
  const EnergyCosts c = EnergyCosts::horowitz();
  const PsumConfig pc = PsumConfig::baseline_int32();
  const AccessCounts n = compute_access_counts(Dataflow::kWS, ffn1(), arch(), pc);
  const double si = 128.0 * 768, sw = 768.0 * 3072, so = 128.0 * 3072;
  const double sp = so * 4.0;
  const double ns = si * n.ifmap_sram + sw * n.weight_sram +
                    sp * n.psum_sram + so * n.ofmap_sram;
  const double nd = si * n.ifmap_dram + sw * n.weight_dram +
                    sp * n.psum_dram + so * n.ofmap_dram;
  const double expected = nd * c.edram_pj_per_byte + ns * c.esram_pj_per_byte +
                          128.0 * 768 * 3072 * c.emac_pj;
  const EnergyBreakdown e = layer_energy(Dataflow::kWS, ffn1(), arch(), pc);
  EXPECT_NEAR(e.total_pj(), expected, expected * 1e-12);
}

TEST(EnergyModel, MacEnergyIndependentOfDataflowAndPsum) {
  const double mac_ws = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                     PsumConfig::baseline_int32()).mac_pj;
  const double mac_is = layer_energy(Dataflow::kIS, ffn1(), arch(),
                                     PsumConfig::apsq_int8(2)).mac_pj;
  EXPECT_DOUBLE_EQ(mac_ws, mac_is);
}

TEST(EnergyModel, PsumEnergyLinearInBetaWhenResident) {
  // BERT layers keep PSUMs on-chip: E_psum ∝ β.
  const double p32 = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                  PsumConfig::baseline_int32()).psum_pj;
  const double p16 = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                  PsumConfig::baseline_int16()).psum_pj;
  const double p8 = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                 PsumConfig::apsq_int8(1)).psum_pj;
  EXPECT_NEAR(p32 / p16, 2.0, 1e-9);
  EXPECT_NEAR(p32 / p8, 4.0, 1e-9);
}

TEST(EnergyModel, NormalizedBaselineIsOne) {
  const Workload w = bert_base_workload();
  EXPECT_NEAR(
      normalized_energy(Dataflow::kWS, w, arch(), PsumConfig::baseline_int32()),
      1.0, 1e-12);
}

TEST(EnergyModel, NormalizedEnergyMonotonicInPsumBits) {
  const Workload w = bert_base_workload();
  double prev = 0.0;
  for (int bits : {4, 6, 8, 16, 32}) {
    const double e = normalized_energy(Dataflow::kWS, w, arch(),
                                       PsumConfig{bits, bits <= 8, 1});
    EXPECT_GT(e, prev) << "bits=" << bits;
    prev = e;
  }
}

TEST(EnergyModel, WorkloadSumsLayerRepeats) {
  Workload w;
  w.name = "repeat-test";
  w.layers.push_back({"l", 64, 64, 64, 3});
  Workload w1;
  w1.name = "once";
  w1.layers.push_back({"l", 64, 64, 64, 1});
  const double e3 = workload_energy(Dataflow::kWS, w, arch(),
                                    PsumConfig::baseline_int32()).total_pj();
  const double e1 = workload_energy(Dataflow::kWS, w1, arch(),
                                    PsumConfig::baseline_int32()).total_pj();
  EXPECT_NEAR(e3, 3.0 * e1, 1e-6);
}

TEST(EnergyModel, OsInsensitiveToPsumPrecision) {
  const double a = layer_energy(Dataflow::kOS, ffn1(), arch(),
                                PsumConfig::baseline_int32()).total_pj();
  const double b = layer_energy(Dataflow::kOS, ffn1(), arch(),
                                PsumConfig::apsq_int8(4)).total_pj();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EnergyModel, SpillRaisesPsumEnergySuperlinearly) {
  // A layer whose INT32 PSUMs spill but INT8 fit: the saving must exceed
  // the plain 4x precision ratio (DRAM costs >> SRAM costs).
  const LayerShape layer{"s1", 16384, 32, 128, 1};
  const double p32 = layer_energy(Dataflow::kWS, layer, arch(),
                                  PsumConfig::baseline_int32()).psum_pj;
  const double p8 = layer_energy(Dataflow::kWS, layer, arch(),
                                 PsumConfig::apsq_int8(1)).psum_pj;
  EXPECT_GT(p32 / p8, 10.0);
}

TEST(EnergyBreakdown, PsumFractionDefinition) {
  const EnergyBreakdown e = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                         PsumConfig::baseline_int32());
  EXPECT_NEAR(e.psum_fraction(), e.psum_pj / e.total_pj(), 1e-12);
  EXPECT_GT(e.psum_fraction(), 0.5);  // PSUM-dominated layer (§I: up to 69%)
}

TEST(EnergyBreakdown, AccumulateOperator) {
  EnergyBreakdown a = layer_energy(Dataflow::kWS, ffn1(), arch(),
                                   PsumConfig::baseline_int32());
  const double t = a.total_pj();
  a += a;
  EXPECT_NEAR(a.total_pj(), 2 * t, 1e-6);
}

}  // namespace
}  // namespace apsq
