#include "energy/access_counts.hpp"

#include <gtest/gtest.h>

namespace apsq {
namespace {

AcceleratorConfig paper_arch() { return AcceleratorConfig::dnn_default(); }

// BERT-Base FFN-in layer at 128 tokens: the hand-checked example of
// DESIGN.md / §II-A.
LayerShape bert_ffn1() { return {"ffn_in", 128, 768, 3072, 1}; }

TEST(AccessCounts, WsBertFfn1HandComputed) {
  const AccessCounts n = compute_access_counts(
      Dataflow::kWS, bert_ffn1(), paper_arch(), PsumConfig::baseline_int32());
  // ci tiles = 96 -> N_p_s = 2*(96-1) = 190 (PSUM fits: 4·128·8 = 4 KB).
  EXPECT_TRUE(n.psum_fits);
  EXPECT_EQ(n.psum_sram, 190);
  EXPECT_EQ(n.psum_dram, 0);
  // co tiles = 384 -> N_i_s = 1 + 384 (S̃i = 128·8 = 1 KB fits).
  EXPECT_TRUE(n.ifmap_fits);
  EXPECT_EQ(n.ifmap_sram, 385);
  EXPECT_EQ(n.ifmap_dram, 1);
  EXPECT_EQ(n.weight_sram, 2);
  EXPECT_EQ(n.weight_dram, 1);
  EXPECT_EQ(n.ofmap_sram, 2);
  EXPECT_EQ(n.ofmap_dram, 1);
}

TEST(AccessCounts, IsBertFfn1HandComputed) {
  const AccessCounts n = compute_access_counts(
      Dataflow::kIS, bert_ffn1(), paper_arch(), PsumConfig::baseline_int32());
  // Weights 768·3072 = 2.36 MB > 128 KB: refetched per row tile (T = 8).
  EXPECT_FALSE(n.weight_fits);
  EXPECT_EQ(n.weight_sram, 16);  // 2·T
  EXPECT_EQ(n.weight_dram, 8);   // T
  EXPECT_EQ(n.ifmap_sram, 2);
  EXPECT_EQ(n.ifmap_dram, 1);
  // IS PSUM footprint: 4·3072·16 = 192 KB ≤ 256 KB -> fits.
  EXPECT_TRUE(n.psum_fits);
  EXPECT_EQ(n.psum_sram, 190);
  EXPECT_EQ(n.psum_dram, 0);
}

TEST(AccessCounts, OsHasZeroPsumTraffic) {
  for (const PsumConfig& pc :
       {PsumConfig::baseline_int32(), PsumConfig::apsq_int8(4)}) {
    const AccessCounts n =
        compute_access_counts(Dataflow::kOS, bert_ffn1(), paper_arch(), pc);
    EXPECT_EQ(n.psum_sram, 0);
    EXPECT_EQ(n.psum_dram, 0);
    EXPECT_TRUE(n.psum_fits);
  }
}

TEST(AccessCounts, WsPsumSpillDoublesAndAddsDram) {
  // Segformer stage-1-sized layer: rows = 16384, INT32 PSUM footprint
  // 4·16384·8 = 512 KB > 256 KB -> spill.
  const LayerShape layer{"s1", 16384, 32, 128, 1};
  const AccessCounts n = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::baseline_int32());
  EXPECT_FALSE(n.psum_fits);
  const i64 ci_tiles = 4;  // 32/8
  EXPECT_EQ(n.psum_sram, 4 * (ci_tiles - 1));
  EXPECT_EQ(n.psum_dram, 2 * (ci_tiles - 1));
}

TEST(AccessCounts, FitConventionIsInclusive) {
  // Footprint EXACTLY equal to the buffer must count as resident —
  // this is what makes Segformer gs=2 and LLaMA2 prefill gs=2 work
  // (DESIGN.md §3.1 "fit convention").
  const LayerShape layer{"s1", 16384, 32, 128, 1};
  const AccessCounts n = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::apsq_int8(2));
  // 2 · 16384 · 8 = 262144 = Bo exactly.
  EXPECT_DOUBLE_EQ(n.psum_footprint_bytes, 262144.0);
  EXPECT_TRUE(n.psum_fits);
  const AccessCounts n3 = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::apsq_int8(3));
  EXPECT_FALSE(n3.psum_fits);
}

TEST(AccessCounts, FootprintScalesWithGroupSize) {
  const LayerShape layer{"l", 1024, 64, 64, 1};
  double prev = 0.0;
  for (index_t gs = 1; gs <= 4; ++gs) {
    const AccessCounts n = compute_access_counts(
        Dataflow::kWS, layer, paper_arch(), PsumConfig::apsq_int8(gs));
    EXPECT_GT(n.psum_footprint_bytes, prev);
    prev = n.psum_footprint_bytes;
  }
}

TEST(AccessCounts, BaselineFootprintUsesBeta) {
  const LayerShape layer{"l", 1024, 64, 64, 1};
  const AccessCounts n32 = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::baseline_int32());
  const AccessCounts n8 = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::apsq_int8(1));
  EXPECT_DOUBLE_EQ(n32.psum_footprint_bytes, 4.0 * n8.psum_footprint_bytes);
}

TEST(AccessCounts, SmallWeightsStayResidentInIs) {
  const LayerShape layer{"tiny", 64, 64, 64, 1};  // 4 KB of weights
  const AccessCounts n = compute_access_counts(
      Dataflow::kIS, layer, paper_arch(), PsumConfig::baseline_int32());
  EXPECT_TRUE(n.weight_fits);
  const i64 t = 4;  // 64/16 row tiles
  EXPECT_EQ(n.weight_sram, 1 + t);
  EXPECT_EQ(n.weight_dram, 1);
}

TEST(AccessCounts, SingleCiTileHasNoPsumTraffic) {
  // ci ≤ Pci: one PSUM tile, no accumulation reads/writes at all.
  const LayerShape layer{"one", 64, 8, 64, 1};
  for (auto df : {Dataflow::kIS, Dataflow::kWS}) {
    const AccessCounts n = compute_access_counts(df, layer, paper_arch(),
                                                 PsumConfig::baseline_int32());
    EXPECT_EQ(n.psum_sram, 0) << to_string(df);
    EXPECT_EQ(n.psum_dram, 0) << to_string(df);
  }
}

TEST(AccessCounts, WsIfmapTileSpill) {
  // rows·Pci > Bi triggers per-co-tile DRAM refetch: rows = 65536 ->
  // 65536·8 = 512 KB > 256 KB.
  const LayerShape layer{"stem", 65536, 27, 16, 1};
  const AccessCounts n = compute_access_counts(
      Dataflow::kWS, layer, paper_arch(), PsumConfig::baseline_int32());
  EXPECT_FALSE(n.ifmap_fits);
  const i64 co_tiles = 2;  // 16/8
  EXPECT_EQ(n.ifmap_sram, 2 * co_tiles);
  EXPECT_EQ(n.ifmap_dram, co_tiles);
}

TEST(AccessCounts, RejectsDegenerateLayer) {
  const LayerShape bad{"bad", 0, 8, 8, 1};
  EXPECT_THROW(compute_access_counts(Dataflow::kWS, bad, paper_arch(),
                                     PsumConfig::baseline_int32()),
               std::logic_error);
}

TEST(DataflowNames, Strings) {
  EXPECT_STREQ(to_string(Dataflow::kIS), "IS");
  EXPECT_STREQ(to_string(Dataflow::kWS), "WS");
  EXPECT_STREQ(to_string(Dataflow::kOS), "OS");
}

TEST(PsumConfigTraits, BetaAndBytes) {
  EXPECT_DOUBLE_EQ(PsumConfig::baseline_int32().beta(8), 4.0);
  EXPECT_DOUBLE_EQ(PsumConfig::baseline_int16().beta(8), 2.0);
  EXPECT_DOUBLE_EQ(PsumConfig::apsq_int8(1).beta(8), 1.0);
  EXPECT_DOUBLE_EQ(PsumConfig::apsq_bits(4, 1).beta(8), 0.5);
  EXPECT_DOUBLE_EQ(PsumConfig::apsq_bits(6, 2).bytes_per_elem(), 0.75);
  EXPECT_EQ(PsumConfig::apsq_int8(3).footprint_multiplier(), 3);
  EXPECT_EQ(PsumConfig::baseline_int32().footprint_multiplier(), 1);
}

}  // namespace
}  // namespace apsq
