// POSITIVE twin of missing_requires_bad.cpp: the REQUIRES contract
// satisfied by a MutexLock in the caller — compiles clean.
#include "common/annotations.hpp"

struct Queue {
  apsq::Mutex mu;
  int depth APSQ_GUARDED_BY(mu) = 0;

  int depth_locked() APSQ_REQUIRES(mu) { return depth; }
};

int sample(Queue& q) {
  apsq::MutexLock lock(q.mu);
  return q.depth_locked();
}
