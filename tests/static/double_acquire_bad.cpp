// NEGATIVE fixture: re-acquiring a mutex already held in the same scope —
// a self-deadlock at runtime. Must FAIL to compile with "acquiring
// mutex ... that is already held".
#include "common/annotations.hpp"

struct Counter {
  apsq::Mutex mu;
  int n APSQ_GUARDED_BY(mu) = 0;
};

void bump_twice(Counter& c) {
  apsq::MutexLock outer(c.mu);
  ++c.n;
  apsq::MutexLock inner(c.mu);  // second acquisition: deadlock — reject
  ++c.n;
}
