// POSITIVE twin of unguarded_access_bad.cpp: the same read under a
// MutexLock compiles clean with the analysis on.
#include "common/annotations.hpp"

struct Cache {
  apsq::Mutex mu;
  int hits APSQ_GUARDED_BY(mu) = 0;
};

int peek(Cache& c) {
  apsq::MutexLock lock(c.mu);
  return c.hits;
}
