// NEGATIVE fixture: calling an APSQ_REQUIRES(mu) function without holding
// mu. Must FAIL to compile with "requires holding mutex" — the contract
// CondVar::wait and every *_locked helper lean on.
#include "common/annotations.hpp"

struct Queue {
  apsq::Mutex mu;
  int depth APSQ_GUARDED_BY(mu) = 0;

  int depth_locked() APSQ_REQUIRES(mu) { return depth; }
};

int sample(Queue& q) {
  return q.depth_locked();  // caller holds nothing — analysis must reject
}
