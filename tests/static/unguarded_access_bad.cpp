// NEGATIVE fixture: reading an APSQ_GUARDED_BY field without holding its
// mutex. Must FAIL to compile under
//   -Wthread-safety -Werror=thread-safety-analysis
// with "requires holding mutex" — the exact bug class the Evaluator's
// memo caches had no static guard against.
#include "common/annotations.hpp"

struct Cache {
  apsq::Mutex mu;
  int hits APSQ_GUARDED_BY(mu) = 0;
};

int peek(Cache& c) {
  return c.hits;  // no lock held — analysis must reject
}
