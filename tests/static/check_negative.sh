#!/usr/bin/env bash
# Negative-compile driver for the thread-safety fixtures.
#
#   check_negative.sh <cxx> <include_dir> <fixture.cpp> <expected_regex>
#   check_negative.sh --positive <cxx> <include_dir> <fixture.cpp>
#
# Negative mode: the fixture must FAIL under
#   -Wthread-safety -Werror=thread-safety-analysis
# AND the diagnostic must match <expected_regex> — a fixture that fails
# for an unrelated reason (typo, missing include) is a broken test, not a
# passing one. Positive mode: the twin must compile clean under the same
# flags, proving the harness rejects the bug and not the idiom.
set -u

mode=negative
if [ "${1:-}" = "--positive" ]; then
  mode=positive
  shift
fi
cxx="$1"
inc="$2"
fixture="$3"

flags=(-std=c++17 "-I$inc" -fsyntax-only -Wthread-safety
       -Werror=thread-safety-analysis)

if [ "$mode" = positive ]; then
  if ! out=$("$cxx" "${flags[@]}" "$fixture" 2>&1); then
    echo "FAIL: positive fixture $fixture did not compile:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "ok: $fixture compiles clean with the analysis on"
  exit 0
fi

expected="$4"
if out=$("$cxx" "${flags[@]}" "$fixture" 2>&1); then
  echo "FAIL: negative fixture $fixture compiled clean — the" >&2
  echo "thread-safety analysis did not reject it" >&2
  exit 1
fi
if ! printf '%s\n' "$out" | grep -qE -- "$expected"; then
  echo "FAIL: $fixture failed to compile, but not with the expected" >&2
  echo "diagnostic (/$expected/). Actual output:" >&2
  echo "$out" >&2
  exit 1
fi
echo "ok: $fixture rejected with /$expected/"
