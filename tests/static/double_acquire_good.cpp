// POSITIVE twin of double_acquire_bad.cpp: sequential scopes, each
// acquisition released before the next — compiles clean.
#include "common/annotations.hpp"

struct Counter {
  apsq::Mutex mu;
  int n APSQ_GUARDED_BY(mu) = 0;
};

void bump_twice(Counter& c) {
  {
    apsq::MutexLock lock(c.mu);
    ++c.n;
  }
  {
    apsq::MutexLock lock(c.mu);
    ++c.n;
  }
}
