#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace apsq {
namespace {

TensorF random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  TensorF t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TensorI8 random_i8(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

TEST(Matmul, SmallKnownValues) {
  TensorF a({2, 2}, std::vector<float>{1, 2, 3, 4});
  TensorF b({2, 2}, std::vector<float>{5, 6, 7, 8});
  const TensorF c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Matmul, RejectsBadShapes) {
  TensorF a({2, 3}), b({2, 3});
  EXPECT_THROW(matmul(a, b), std::logic_error);
}

TEST(Matmul, TnEquivalentToExplicitTranspose) {
  Rng rng(1);
  const TensorF a = random_tensor({5, 4}, rng);
  const TensorF b = random_tensor({5, 6}, rng);
  const TensorF ref = matmul(transpose(a), b);
  const TensorF got = matmul_tn(a, b);
  EXPECT_LT(max_abs_diff(ref, got), 1e-5f);
}

TEST(Matmul, NtEquivalentToExplicitTranspose) {
  Rng rng(2);
  const TensorF a = random_tensor({5, 4}, rng);
  const TensorF b = random_tensor({6, 4}, rng);
  const TensorF ref = matmul(a, transpose(b));
  const TensorF got = matmul_nt(a, b);
  EXPECT_LT(max_abs_diff(ref, got), 1e-5f);
}

TEST(Matmul, AccumulateAddsIntoC) {
  Rng rng(3);
  const TensorF a = random_tensor({3, 4}, rng);
  const TensorF b = random_tensor({4, 5}, rng);
  TensorF c({3, 5}, 1.0f);
  matmul_accumulate(a, b, c);
  const TensorF ref = matmul(a, b);
  for (index_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], ref[i] + 1.0f, 1e-5f);
}

TEST(MatmulI8, MatchesFloatReferenceOnIntegers) {
  Rng rng(4);
  const TensorI8 a = random_i8({7, 9}, rng);
  const TensorI8 b = random_i8({9, 5}, rng);
  const TensorI32 c = matmul_i8(a, b);
  const TensorF ref = matmul(a.cast<float>(), b.cast<float>());
  for (index_t i = 0; i < c.numel(); ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(c[i]), ref[i]);
}

TEST(MatmulI8, ExtremeValuesNoOverflow) {
  // K·128·128 at K=64 stays far below int32 limits.
  TensorI8 a({1, 64}, std::vector<i8>(64, -128));
  TensorI8 b({64, 1}, std::vector<i8>(64, -128));
  const TensorI32 c = matmul_i8(a, b);
  EXPECT_EQ(c(0, 0), 64 * 128 * 128);
}

TEST(MatmulI8Krange, TilesPartitionTheFullProduct) {
  // Σ_i Tp_i == full GEMM — Eq. (8)'s tiling identity.
  Rng rng(5);
  const TensorI8 a = random_i8({4, 26}, rng);
  const TensorI8 b = random_i8({26, 3}, rng);
  const TensorI32 full = matmul_i8(a, b);
  TensorI32 acc({4, 3}, 0);
  const index_t tile = 8;
  for (index_t k0 = 0; k0 < 26; k0 += tile) {
    const TensorI32 part = matmul_i8_krange(a, b, k0, std::min(k0 + tile, i64{26}));
    for (index_t i = 0; i < acc.numel(); ++i) acc[i] += part[i];
  }
  for (index_t i = 0; i < acc.numel(); ++i) EXPECT_EQ(acc[i], full[i]);
}

TEST(MatmulI8Krange, EmptyRangeIsZero) {
  Rng rng(6);
  const TensorI8 a = random_i8({2, 4}, rng);
  const TensorI8 b = random_i8({4, 2}, rng);
  const TensorI32 c = matmul_i8_krange(a, b, 2, 2);
  for (index_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0);
}

}  // namespace
}  // namespace apsq
