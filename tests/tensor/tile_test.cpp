#include "tensor/tile.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace apsq {
namespace {

TEST(ClampTile, InteriorTileFullSize) {
  const TileRect t = clamp_tile(4, 8, 4, 8, 100, 100);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_EQ(t.row0, 4);
  EXPECT_EQ(t.col1, 16);
}

TEST(ClampTile, RaggedEdge) {
  const TileRect t = clamp_tile(8, 0, 16, 8, 10, 5);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 5);
}

TEST(ClampTile, RejectsOutOfBoundsAnchor) {
  EXPECT_THROW(clamp_tile(10, 0, 4, 4, 10, 10), std::logic_error);
}

TEST(Tile, ExtractInsertRoundTrip) {
  Rng rng(1);
  TensorF src({7, 9});
  for (index_t i = 0; i < src.numel(); ++i)
    src[i] = static_cast<float>(rng.normal());
  TensorF dst({7, 9}, 0.0f);
  for (index_t r = 0; r < 7; r += 3)
    for (index_t c = 0; c < 9; c += 4) {
      const TileRect t = clamp_tile(r, c, 3, 4, 7, 9);
      insert_tile(dst, t, extract_tile(src, t));
    }
  for (index_t i = 0; i < src.numel(); ++i) EXPECT_FLOAT_EQ(dst[i], src[i]);
}

TEST(Tile, AccumulateAdds) {
  TensorF dst({2, 2}, 1.0f);
  TensorF tile({2, 2}, 2.0f);
  accumulate_tile(dst, TileRect{0, 2, 0, 2}, tile);
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dst[i], 3.0f);
}

TEST(Tile, ExtractChecksBounds) {
  TensorF src({4, 4});
  EXPECT_THROW(extract_tile(src, TileRect{0, 5, 0, 2}), std::logic_error);
}

TEST(Tile, InsertChecksTileShape) {
  TensorF dst({4, 4});
  TensorF tile({2, 2});
  EXPECT_THROW(insert_tile(dst, TileRect{0, 3, 0, 2}, tile), std::logic_error);
}

}  // namespace
}  // namespace apsq
