#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace apsq {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{8, 8, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8);  // same-padded 3x3 s1
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.patch_len(), 27);

  ConvGeometry s2{8, 8, 3, 3, 2, 1};
  EXPECT_EQ(s2.out_h(), 4);

  ConvGeometry k7s4{512, 512, 3, 7, 4, 3};
  EXPECT_EQ(k7s4.out_h(), 128);  // Segformer patch embed 1
}

TEST(ConvGeometry, RejectsOversizedKernel) {
  ConvGeometry g{2, 2, 1, 5, 1, 0};
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Im2col, PointwiseIsIdentity) {
  // k=1 s=1 p=0 im2col is a no-op re-layout.
  Rng rng(1);
  TensorF fmap({6, 4});
  for (index_t i = 0; i < fmap.numel(); ++i)
    fmap[i] = static_cast<float>(rng.normal());
  ConvGeometry g{2, 3, 4, 1, 1, 0};
  const TensorF patches = im2col(fmap, g);
  EXPECT_EQ(patches.shape(), fmap.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(patches, fmap), 0.0f);
}

TEST(Im2col, KnownPatchValues) {
  // 2x2 single-channel map, 2x2 kernel, no pad: one patch = the map.
  TensorF fmap({4, 1}, std::vector<float>{1, 2, 3, 4});
  ConvGeometry g{2, 2, 1, 2, 1, 0};
  const TensorF p = im2col(fmap, g);
  EXPECT_EQ(p.dim(0), 1);
  EXPECT_EQ(p.dim(1), 4);
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(p(0, i), fmap(i, 0));
}

TEST(Im2col, PaddingReadsZero) {
  TensorF fmap({1, 1}, std::vector<float>{5.0f});
  ConvGeometry g{1, 1, 1, 3, 1, 1};  // 3x3 kernel over a single pixel
  const TensorF p = im2col(fmap, g);
  EXPECT_EQ(p.dim(0), 1);
  EXPECT_EQ(p.dim(1), 9);
  for (index_t i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(p(0, i), i == 4 ? 5.0f : 0.0f);  // centre tap only
}

TEST(Conv2dGemm, MatchesDirectConvolution) {
  // Direct nested-loop conv as an independent reference.
  Rng rng(2);
  const ConvGeometry g{5, 6, 3, 3, 1, 1};
  TensorF fmap({30, 3}), w({27, 2});
  for (index_t i = 0; i < fmap.numel(); ++i)
    fmap[i] = static_cast<float>(rng.normal());
  for (index_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.normal());

  const TensorF got = conv2d_gemm(fmap, w, g);

  for (index_t oy = 0; oy < g.out_h(); ++oy)
    for (index_t ox = 0; ox < g.out_w(); ++ox)
      for (index_t oc = 0; oc < 2; ++oc) {
        double acc = 0.0;
        for (index_t ky = 0; ky < 3; ++ky)
          for (index_t kx = 0; kx < 3; ++kx)
            for (index_t c = 0; c < 3; ++c) {
              const index_t iy = oy + ky - 1, ix = ox + kx - 1;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              acc += fmap(iy * g.in_w + ix, c) *
                     w((ky * 3 + kx) * 3 + c, oc);
            }
        ASSERT_NEAR(got(oy * g.out_w() + ox, oc), acc, 1e-4)
            << oy << "," << ox << "," << oc;
      }
}

TEST(Conv2dGemmI8, MatchesFloatOnIntegers) {
  Rng rng(3);
  const ConvGeometry g{4, 4, 2, 3, 2, 1};
  TensorI8 fmap({16, 2}), w({18, 3});
  for (index_t i = 0; i < fmap.numel(); ++i)
    fmap[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  for (index_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  const TensorI32 got = conv2d_gemm_i8(fmap, w, g);
  const TensorF ref = conv2d_gemm(fmap.cast<float>(), w.cast<float>(), g);
  for (index_t i = 0; i < got.numel(); ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(got[i]), ref[i]);
}

TEST(Col2im, AdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity that
  // makes Conv2d::backward correct.
  Rng rng(4);
  const ConvGeometry g{5, 5, 2, 3, 2, 1};
  TensorF x({25, 2}), y({g.out_h() * g.out_w(), g.patch_len()});
  for (index_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  for (index_t i = 0; i < y.numel(); ++i)
    y[i] = static_cast<float>(rng.normal());

  const TensorF ix = im2col(x, g);
  const TensorF cy = col2im(y, g);
  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < ix.numel(); ++i)
    lhs += static_cast<double>(ix[i]) * y[i];
  for (index_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace apsq
