#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace apsq {
namespace {

TEST(Ops, AddSubMulScale) {
  TensorF a({2}, std::vector<float>{1, 2});
  TensorF b({2}, std::vector<float>{3, 5});
  EXPECT_FLOAT_EQ(add(a, b)(1), 7.0f);
  EXPECT_FLOAT_EQ(sub(b, a)(0), 2.0f);
  EXPECT_FLOAT_EQ(mul(a, b)(1), 10.0f);
  EXPECT_FLOAT_EQ(scale(a, 2.0f)(0), 2.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  TensorF a({2}), b({3});
  EXPECT_THROW(add(a, b), std::logic_error);
}

TEST(Ops, InplaceVariants) {
  TensorF y({2}, std::vector<float>{1, 1});
  TensorF x({2}, std::vector<float>{2, 3});
  add_inplace(y, x);
  EXPECT_FLOAT_EQ(y(1), 4.0f);
  axpy_inplace(y, 0.5f, x);
  EXPECT_FLOAT_EQ(y(0), 4.0f);
}

TEST(Ops, AddRowBias) {
  TensorF a({2, 3}, 1.0f);
  TensorF b({3}, std::vector<float>{1, 2, 3});
  const TensorF c = add_row_bias(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 2), 4.0f);
}

TEST(Ops, Reductions) {
  TensorF a({4}, std::vector<float>{-3, 1, 2, 0});
  EXPECT_FLOAT_EQ(max_abs(a), 3.0f);
  EXPECT_FLOAT_EQ(sum(a), 0.0f);
  EXPECT_FLOAT_EQ(mean(a), 0.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(1);
  TensorF x({5, 7});
  for (index_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal(0.0, 3.0));
  const TensorF p = softmax_rows(x);
  for (index_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 7; ++j) {
      EXPECT_GT(p(i, j), 0.0f);
      s += p(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  TensorF x({1, 3}, std::vector<float>{1000.0f, 1000.0f, 999.0f});
  const TensorF p = softmax_rows(x);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0), p(0, 1), 1e-6);
  EXPECT_LT(p(0, 2), p(0, 0));
}

TEST(Ops, TransposeInvolution) {
  Rng rng(2);
  TensorF a({3, 5});
  for (index_t i = 0; i < a.numel(); ++i)
    a[i] = static_cast<float>(rng.normal());
  const TensorF tt = transpose(transpose(a));
  EXPECT_FLOAT_EQ(max_abs_diff(a, tt), 0.0f);
}

TEST(Ops, MaxAbsDiff) {
  TensorF a({2}, std::vector<float>{1, 2});
  TensorF b({2}, std::vector<float>{1.5, 1});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

}  // namespace
}  // namespace apsq
