#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace apsq {
namespace {

TEST(Tensor, ConstructAndFill) {
  TensorF t({2, 3}, 1.5f);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (index_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, RowMajorLayout) {
  TensorF t({2, 3});
  float v = 0.0f;
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j) t(i, j) = v++;
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[3], 3.0f);  // start of second row
  EXPECT_FLOAT_EQ(t(1, 2), 5.0f);
}

TEST(Tensor, Rank3Indexing) {
  Tensor<int> t({2, 3, 4});
  t(1, 2, 3) = 42;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 42);
}

TEST(Tensor, FromData) {
  TensorF t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t(1, 0), 3.0f);
}

TEST(Tensor, FromDataRejectsSizeMismatch) {
  EXPECT_THROW(TensorF({2, 2}, std::vector<float>{1, 2, 3}), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  TensorF t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t(1, 0), 3.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::logic_error);
}

TEST(Tensor, AtBoundsChecked) {
  TensorF t({2, 2});
  EXPECT_NO_THROW(t.at({1, 1}));
  EXPECT_THROW(t.at({2, 0}), std::logic_error);
  EXPECT_THROW(t.at({0}), std::logic_error);
}

TEST(Tensor, CastConvertsElementwise) {
  TensorF t({3}, std::vector<float>{1.9f, -2.9f, 3.0f});
  const TensorI32 i = t.cast<i32>();
  EXPECT_EQ(i(0), 1);   // truncation semantics of static_cast
  EXPECT_EQ(i(1), -2);
  EXPECT_EQ(i(2), 3);
}

TEST(Tensor, ScalarShape) {
  TensorF t(Shape{});
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, SameShape) {
  TensorF a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(ShapeHelpers, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace apsq
