#include "common/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace apsq {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"Model", "Energy"});
  t.add_row({"BERT", "0.50"});
  t.add_row({"Segformer", "0.13"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("BERT"), std::string::npos);
  EXPECT_NE(s.find("0.13"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Header rule + top + separator + bottom = at least 4 rules.
  size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::pct(0.281, 1), "28.1%");
  EXPECT_EQ(Table::ratio(31.7, 1), "31.7x");
}

TEST(Table, ColumnAlignmentPadsToWidest) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.to_string();
  // every line should have the same width
  size_t first_len = s.find('\n');
  size_t pos = 0;
  while (pos < s.size()) {
    size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace apsq
