#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace apsq {
namespace {

TEST(WorkStealingPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    WorkStealingPool pool(threads);
    constexpr index_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.parallel_for(n, [&](index_t i) { ++hits[static_cast<size_t>(i)]; });
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "i=" << i << " threads=" << threads;
  }
}

TEST(WorkStealingPool, MoreThreadsThanTasks) {
  WorkStealingPool pool(8);
  std::atomic<index_t> sum{0};
  pool.parallel_for(3, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 3);
}

TEST(WorkStealingPool, ZeroTasksIsANoOp) {
  WorkStealingPool pool(4);
  pool.parallel_for(0, [](index_t) { FAIL() << "must not be called"; });
}

TEST(WorkStealingPool, SingleThreadRunsInline) {
  WorkStealingPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](index_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(pool.steal_count(), 0);
}

TEST(WorkStealingPool, SkewedTasksGetStolen) {
  // Worker 0's chunk is made pathologically slow; with stealing the other
  // workers take over the tail of its deque.
  WorkStealingPool pool(4);
  constexpr index_t n = 64;
  std::atomic<int> done{0};
  pool.parallel_for(n, [&](index_t i) {
    if (i < n / 4)  // worker 0's initial chunk
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++done;
  });
  EXPECT_EQ(done.load(), n);
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(pool.steal_count(), 0);
  }
}

TEST(WorkStealingPool, FirstExceptionPropagates) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](index_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(WorkStealingPool, UsableAgainAfterAnException) {
  // The persistent workers must survive a throwing run.
  WorkStealingPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(50, [&](index_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<index_t> sum{0};
  pool.parallel_for(10, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(WorkStealingPool, WorkersPersistAcrossParallelForCalls) {
  // The pool-reuse contract: repeated calls are served by the same
  // long-lived workers (run_count ticks; every call completes fully).
  WorkStealingPool pool(4);
  constexpr int kCalls = 25;
  for (int c = 0; c < kCalls; ++c) {
    std::atomic<index_t> sum{0};
    pool.parallel_for(100, [&](index_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 4950) << "call " << c;
  }
  EXPECT_EQ(pool.run_count(), kCalls);
}

TEST(WorkStealingPool, NestedParallelForComposesOnSharedWorkers) {
  // A task that re-enters its own pool submits a child scope into the
  // shared deques (it must not deadlock, and every nested index runs).
  WorkStealingPool pool(3);
  std::atomic<index_t> total{0};
  pool.parallel_for(6, [&](index_t) {
    pool.parallel_for(5, [&](index_t j) { total += j; });
  });
  EXPECT_EQ(total.load(), 6 * 10);
  // Outer run + one child scope per outer task all dispatched to the pool.
  EXPECT_EQ(pool.run_count(), 1 + 6);
}

TEST(WorkStealingPool, NestedParallelForSpreadsAcrossWorkers) {
  // With one slow outer task fanning out many inner tasks, the other
  // workers must be able to steal and execute the nested scope's work.
  WorkStealingPool pool(4);
  std::set<std::thread::id> inner_threads;
  apsq::Mutex mu;
  pool.parallel_for(1, [&](index_t) {
    pool.parallel_for(64, [&](index_t) {
      {
        apsq::MutexLock lock(mu);
        inner_threads.insert(std::this_thread::get_id());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  });
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(inner_threads.size(), 1u);
  }
}

TEST(WorkStealingPool, DeeplyNestedScopesComplete) {
  WorkStealingPool pool(2);
  std::atomic<index_t> total{0};
  pool.parallel_for(4, [&](index_t) {
    pool.parallel_for(3, [&](index_t) {
      pool.parallel_for(2, [&](index_t k) { total += k + 1; });
    });
  });
  EXPECT_EQ(total.load(), 4 * 3 * (1 + 2));
}

TEST(WorkStealingPool, NestedExceptionPropagatesThroughOuterRun) {
  // An inner scope's exception rethrows out of the enclosing task and is
  // captured by the enclosing run; the pool stays usable afterwards.
  WorkStealingPool pool(3);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](index_t) {
                                   pool.parallel_for(4, [&](index_t j) {
                                     if (j == 2)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
  std::atomic<index_t> sum{0};
  pool.parallel_for(10, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(WorkStealingPool, SingleThreadPoolNestsInline) {
  WorkStealingPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  index_t total = 0;
  pool.parallel_for(3, [&](index_t) {
    pool.parallel_for(3, [&](index_t j) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      total += j;
    });
  });
  EXPECT_EQ(total, 9);
  EXPECT_EQ(pool.run_count(), 0);  // inline runs are not dispatched
}

TEST(WorkStealingPool, ConcurrentExternalCallersAllComplete) {
  // Distinct external threads may have runs in flight at once; each run's
  // tasks execute exactly once and each call returns when its own scope
  // is done.
  WorkStealingPool pool(2);
  std::atomic<index_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c)
    callers.emplace_back([&] {
      pool.parallel_for(50, [&](index_t i) { total += i; });
    });
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * (49 * 50 / 2));
}

TEST(WorkStealingPool, SharedPoolIsProcessWideAndSizedToHardware) {
  WorkStealingPool& a = WorkStealingPool::shared();
  WorkStealingPool& b = WorkStealingPool::shared();
  EXPECT_EQ(&a, &b);
  if (std::getenv("APSQ_POOL_THREADS") == nullptr)
    EXPECT_EQ(a.num_threads(), WorkStealingPool::hardware_threads());
  else
    EXPECT_GE(a.num_threads(), 1);
  std::atomic<index_t> sum{0};
  a.parallel_for(100, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(WorkStealingPool, RejectsZeroThreads) {
  EXPECT_THROW(WorkStealingPool(0), std::logic_error);
}

TEST(WorkStealingPool, HardwareThreadsPositive) {
  EXPECT_GE(WorkStealingPool::hardware_threads(), 1);
}

TEST(WorkStealingPool, TracingWritesChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "pool_trace_test.json";
  std::remove(path.c_str());
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(3);
    pool.enable_tracing(path);
    pool.parallel_for(8, [&](index_t) { ++count; });
    pool.parallel_for(4, [&](index_t) { ++count; });
  }  // destructor joins the workers, then flushes the trace
  EXPECT_EQ(count.load(), 12);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  // One complete event per executed task, tagged with its run and index.
  size_t events = 0;
  for (size_t pos = s.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = s.find("\"ph\":\"X\"", pos + 1))
    ++events;
  EXPECT_EQ(events, 12u);
  EXPECT_NE(s.find("\"args\":{\"run\":1,"), std::string::npos);
  EXPECT_NE(s.find("\"args\":{\"run\":2,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WorkStealingPool, TracingOffByDefaultWritesNothing) {
  const std::string path = ::testing::TempDir() + "pool_no_trace_test.json";
  std::remove(path.c_str());
  {
    WorkStealingPool pool(2);
    pool.parallel_for(4, [](index_t) {});
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

}  // namespace
}  // namespace apsq
