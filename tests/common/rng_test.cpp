#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace apsq {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 5000; ++i) ++hits[static_cast<size_t>(rng.uniform_index(10))];
  for (int h : hits) EXPECT_GT(h, 300);  // roughly uniform
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(99);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithMeanStddev) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<index_t> v(100);
  for (index_t i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, StreamIsReproducible) {
  Rng a = Rng::stream(123, 7);
  Rng b = Rng::stream(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamIndicesAreDecorrelated) {
  // Consecutive worker indices — the DSE-sweep pattern — must not overlap.
  Rng s0 = Rng::stream(42, 0);
  Rng s1 = Rng::stream(42, 1);
  Rng s2 = Rng::stream(42, 2);
  int same01 = 0, same12 = 0;
  for (int i = 0; i < 64; ++i) {
    const u64 a = s0.next_u64(), b = s1.next_u64(), c = s2.next_u64();
    if (a == b) ++same01;
    if (b == c) ++same12;
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same12, 2);
}

TEST(Rng, StreamIsPureAndLeavesNoSharedState) {
  // Unlike fork(), stream() derives from values alone: calling it many
  // times with the same arguments always yields the same generator.
  const u64 first = Rng::stream(9, 3).next_u64();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(Rng::stream(9, 3).next_u64(), first);
}

TEST(Rng, StreamDependsOnSeed) {
  EXPECT_NE(Rng::stream(1, 0).next_u64(), Rng::stream(2, 0).next_u64());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(11);
  b.fork();
  EXPECT_EQ(a.next_u64(), b.next_u64());  // parents stay in lockstep
  u64 c0 = child.next_u64();
  EXPECT_NE(c0, a.next_u64());
}

}  // namespace
}  // namespace apsq
