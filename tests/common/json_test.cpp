// The JSON reader's contract: full-grammar parsing with checked typed
// accessors, plus the two strictnesses job specs and store snapshots rely
// on — duplicate object keys and trailing garbage are errors, and every
// syntax error carries a 1-based line:column location.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace apsq {
namespace {

TEST(Json, ParsesScalarsArraysAndNestedObjects) {
  const JsonValue v = json_parse(
      "{\"n\": null, \"b\": true, \"x\": -2.5e3, \"s\": \"hi\","
      " \"a\": [1, 2, 3], \"o\": {\"k\": false}}");
  EXPECT_TRUE(v.is_object());
  EXPECT_TRUE(v.get("n").is_null());
  EXPECT_EQ(v.get("b").as_bool(), true);
  EXPECT_DOUBLE_EQ(v.get("x").as_number(), -2500.0);
  EXPECT_EQ(v.get("s").as_string(), "hi");
  ASSERT_EQ(v.get("a").size(), 3u);
  EXPECT_EQ(v.get("a").at(1).as_i64(), 2);
  EXPECT_EQ(v.get("o").get("k").as_bool(), false);
}

TEST(Json, MembersPreserveSourceOrder) {
  const JsonValue v = json_parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  const auto& m = v.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "z");
  EXPECT_EQ(m[1].first, "a");
  EXPECT_EQ(m[2].first, "m");
}

TEST(Json, StringEscapesDecode) {
  const JsonValue v =
      json_parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, NumbersRoundTripThroughSeventeenSignificantDigits) {
  const JsonValue v = json_parse("[0.1, 1e-300, 9007199254740993.0]");
  EXPECT_DOUBLE_EQ(v.at(0).as_number(), 0.1);
  EXPECT_DOUBLE_EQ(v.at(1).as_number(), 1e-300);
  // 2^53 + 1 is not exactly representable — as_i64 must reject rather
  // than silently round, but as_number returns the nearest double.
  EXPECT_DOUBLE_EQ(v.at(2).as_number(), 9007199254740992.0);
}

TEST(Json, AccessorsThrowNamingActualType) {
  const JsonValue v = json_parse("{\"s\": \"x\", \"f\": 2.5}");
  EXPECT_THROW(v.get("s").as_number(), std::invalid_argument);
  EXPECT_THROW(v.get("f").as_i64(), std::invalid_argument);  // fractional
  EXPECT_THROW(v.get("missing"), std::invalid_argument);
  EXPECT_THROW(v.at(0), std::invalid_argument);  // object, not array
  try {
    v.get("s").as_number();
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("expected a number, got string"),
              std::string::npos);
  }
}

TEST(Json, RejectsDuplicateKeysTrailingGarbageAndBadSyntax) {
  EXPECT_THROW(json_parse("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
  EXPECT_THROW(json_parse("{} x"), std::invalid_argument);
  EXPECT_THROW(json_parse("[1, 2"), std::invalid_argument);
  EXPECT_THROW(json_parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(json_parse("[01]"), std::invalid_argument);  // leading zero
  EXPECT_THROW(json_parse("[1.]"), std::invalid_argument);
  EXPECT_THROW(json_parse(""), std::invalid_argument);
  EXPECT_THROW(json_parse("tru"), std::invalid_argument);
}

TEST(Json, SyntaxErrorsCarryLineAndColumn) {
  try {
    json_parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Json, ParseFilePrefixesErrorsWithPath) {
  const std::string path = ::testing::TempDir() + "json_test_bad.json";
  std::ofstream(path) << "{ nope";
  try {
    json_parse_file(path);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find(path), 0u);
  }
  std::remove(path.c_str());
  EXPECT_THROW(json_parse_file(path + ".absent"), std::runtime_error);
}

}  // namespace
}  // namespace apsq
