#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace apsq {
namespace {

TEST(CeilDiv, ExactAndRagged) {
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(9, 4), 3);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(4096, 32), 128);
}

TEST(RoundHalfAway, TiesGoAwayFromZero) {
  EXPECT_DOUBLE_EQ(round_half_away(0.5), 1.0);
  EXPECT_DOUBLE_EQ(round_half_away(-0.5), -1.0);
  EXPECT_DOUBLE_EQ(round_half_away(2.5), 3.0);
  EXPECT_DOUBLE_EQ(round_half_away(-2.5), -3.0);
  EXPECT_DOUBLE_EQ(round_half_away(1.49), 1.0);
  EXPECT_DOUBLE_EQ(round_half_away(-1.49), -1.0);
  EXPECT_DOUBLE_EQ(round_half_away(0.0), 0.0);
}

TEST(RoundingShiftRight, MatchesFloatRounding) {
  // The hardware shifter must agree with the float reference for every
  // shift amount — this is the bit-exactness contract of DESIGN.md §3.3.
  Rng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    const i64 x = static_cast<i64>(rng.next_u64() % 2000001) - 1000000;
    const int s = static_cast<int>(rng.next_u64() % 16);
    const i64 hw = rounding_shift_right(x, s);
    const i64 ref = static_cast<i64>(
        round_half_away(static_cast<double>(x) / std::exp2(s)));
    ASSERT_EQ(hw, ref) << "x=" << x << " s=" << s;
  }
}

TEST(RoundingShiftRight, ZeroShiftIsIdentity) {
  EXPECT_EQ(rounding_shift_right(12345, 0), 12345);
  EXPECT_EQ(rounding_shift_right(-12345, 0), -12345);
}

TEST(RoundingShiftRight, HalfwayCases) {
  EXPECT_EQ(rounding_shift_right(2, 2), 1);    // 0.5 -> 1
  EXPECT_EQ(rounding_shift_right(-2, 2), -1);  // -0.5 -> -1
  EXPECT_EQ(rounding_shift_right(6, 2), 2);    // 1.5 -> 2
  EXPECT_EQ(rounding_shift_right(-6, 2), -2);
}

TEST(Clip, Saturates) {
  EXPECT_EQ(clip(200, -128, 127), 127);
  EXPECT_EQ(clip(-200, -128, 127), -128);
  EXPECT_EQ(clip(0, -128, 127), 0);
  EXPECT_EQ(clip(127, -128, 127), 127);
  EXPECT_EQ(clip(-128, -128, 127), -128);
}

TEST(IsPow2, Basics) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(RoundToPow2, NearestExponent) {
  EXPECT_DOUBLE_EQ(round_to_pow2(1.0), 1.0);
  EXPECT_DOUBLE_EQ(round_to_pow2(3.0), 4.0);   // log2(3)=1.58 -> 2
  EXPECT_DOUBLE_EQ(round_to_pow2(2.8), 2.0);   // log2(2.8)=1.49 -> 1
  EXPECT_DOUBLE_EQ(round_to_pow2(0.3), 0.25);  // log2(0.3)=-1.74 -> -2
  EXPECT_DOUBLE_EQ(round_to_pow2(1000.0), 1024.0);
}

TEST(Pow2Exponent, RoundTripsWithRoundToPow2) {
  for (double a : {0.1, 0.5, 0.9, 1.5, 7.3, 100.0, 12345.6}) {
    EXPECT_DOUBLE_EQ(std::exp2(pow2_exponent(a)), round_to_pow2(a));
  }
}

TEST(PsumBitsRequired, MatchesPaperSectionIIA) {
  // §II-A: PSUM needs 16 + log2(Ci) bits; BERT-Large FFN Ci = 4096 -> 28.
  EXPECT_EQ(psum_bits_required(4096), 28);
  EXPECT_EQ(psum_bits_required(1), 16);
  EXPECT_EQ(psum_bits_required(2), 17);
  EXPECT_EQ(psum_bits_required(768), 26);   // ceil(log2 768) = 10
  EXPECT_EQ(psum_bits_required(11008), 30);  // LLaMA2 FFN
}

}  // namespace
}  // namespace apsq
