#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace apsq {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), std::logic_error);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"x"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  csv.add_row({"plain"});
  EXPECT_EQ(csv.to_string(),
            "x\n\"has,comma\"\n\"has\"\"quote\"\nplain\n");
}

TEST(Csv, QuotesCarriageReturnPerRfc4180) {
  // An unquoted \r makes readers that split records on \r\n see a phantom
  // row boundary; RFC 4180 requires quoting CR just like LF.
  CsvWriter csv({"x"});
  csv.add_row({"has\rreturn"});
  csv.add_row({"has\r\npair"});
  EXPECT_EQ(csv.to_string(), "x\n\"has\rreturn\"\n\"has\r\npair\"\n");
}

TEST(Csv, WritesFile) {
  const std::string path = "/tmp/apsq_csv_test.csv";
  CsvWriter csv({"h"});
  csv.add_row({"v"});
  ASSERT_TRUE(csv.write(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::getline(in, line);
  EXPECT_EQ(line, "v");
  std::remove(path.c_str());
}

TEST(Csv, WriteFailsOnBadPath) {
  CsvWriter csv({"h"});
  EXPECT_FALSE(csv.write("/nonexistent_dir_zz/x.csv"));
}

}  // namespace
}  // namespace apsq
