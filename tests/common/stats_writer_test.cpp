#include "common/stats_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apsq {
namespace {

TEST(FormatDouble, RoundTripExact) {
  // %.17g survives a string → double → string round trip for doubles that
  // have no short decimal form — the property the CSV byte-identity
  // contract rests on.
  for (double v : {1.0 / 3.0, 0.1, 6.02214076e23, -0.0, 1.25e-300}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
}

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(StatsWriter, CsvGoldenHeaderAndEscaping) {
  StatsWriter sw({"name", "count", "ratio", "flag"});
  sw.begin_row();
  sw.add(std::string("plain"));
  sw.add(i64{42});
  sw.add(0.25);
  sw.add(true);
  sw.begin_row();
  sw.add(std::string("comma, quote \" and\nnewline"));
  sw.add(i64{-1});
  sw.add(1.0 / 3.0);
  sw.add(false);

  EXPECT_EQ(sw.row_count(), 2u);
  const std::string csv = sw.csv().to_string();
  // Golden: RFC-4180 quoting for the cell containing comma/quote/newline,
  // %.17g for the non-terminating double, bools as 0/1.
  EXPECT_EQ(csv,
            "name,count,ratio,flag\n"
            "plain,42,0.25,1\n"
            "\"comma, quote \"\" and\nnewline\",-1,"
            "0.33333333333333331,0\n");
}

TEST(StatsWriter, JsonTypesCellsByOrigin) {
  StatsWriter sw({"stat", "value"});
  sw.begin_row();
  sw.add(std::string("points"));
  sw.add(i64{8});
  sw.begin_row();
  sw.add(std::string("se\"cs"));
  sw.add(0.5);

  const std::string json = sw.to_json();
  EXPECT_EQ(json,
            "[\n"
            " {\"stat\": \"points\", \"value\": 8},\n"
            " {\"stat\": \"se\\\"cs\", \"value\": 0.5}\n"
            "]\n");
}

TEST(StatsWriter, ShortRowIsRejected) {
  StatsWriter sw({"a", "b"});
  sw.begin_row();
  sw.add(i64{1});
  EXPECT_THROW(sw.begin_row(), std::exception);  // row not at header arity
}

TEST(StatsWriter, WritesFiles) {
  StatsWriter sw({"k", "v"});
  sw.begin_row();
  sw.add(std::string("x"));
  sw.add(i64{7});
  const std::string base = ::testing::TempDir() + "stats_writer_test";
  ASSERT_TRUE(sw.write_csv(base + ".csv"));
  ASSERT_TRUE(sw.write_json(base + ".json"));
  std::ifstream csv(base + ".csv"), json(base + ".json");
  std::stringstream cs, js;
  cs << csv.rdbuf();
  js << json.rdbuf();
  EXPECT_EQ(cs.str(), "k,v\nx,7\n");
  EXPECT_NE(js.str().find("\"k\": \"x\""), std::string::npos);
  std::remove((base + ".csv").c_str());
  std::remove((base + ".json").c_str());
}

}  // namespace
}  // namespace apsq
