#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "dse/evaluator.hpp"

namespace apsq {
namespace {

TEST(CliParse, AcceptsWellFormedIntegers) {
  i64 v = -1;
  std::ostringstream err;
  EXPECT_TRUE(parse_i64_flag("--n", "42", 0, 100, v, err));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_i64_flag("--n", "-7", -10, 10, v, err));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_i64_flag("--n", "0", 0, 0, v, err));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(err.str().empty());
}

TEST(CliParse, RejectsNonNumericTextByFlagName) {
  // The std::atoi failure mode this replaces: "--threads foo" became 0.
  i64 v = 123;
  std::ostringstream err;
  EXPECT_FALSE(parse_i64_flag("--threads", "foo", 1, 64, v, err));
  EXPECT_EQ(v, 123);  // untouched on failure
  EXPECT_NE(err.str().find("--threads"), std::string::npos);
  EXPECT_NE(err.str().find("foo"), std::string::npos);
}

TEST(CliParse, RejectsTrailingJunkAndEmpty) {
  i64 v = 0;
  std::ostringstream err;
  EXPECT_FALSE(parse_i64_flag("--n", "12abc", 0, 100, v, err));
  EXPECT_FALSE(parse_i64_flag("--n", "", 0, 100, v, err));
  EXPECT_FALSE(parse_i64_flag("--n", "1.5", 0, 100, v, err));
  EXPECT_FALSE(parse_i64_flag("--n", " 7", 0, 100, v, err));  // no trimming
}

TEST(CliParse, EnforcesRange) {
  // Negative --top / --shrink used to slip through inconsistently.
  i64 v = 0;
  std::ostringstream err;
  EXPECT_FALSE(parse_i64_flag("--top", "-3", 0, 1 << 20, v, err));
  EXPECT_NE(err.str().find("--top"), std::string::npos);
  EXPECT_FALSE(parse_i64_flag("--shrink", "0", 1, 100, v, err));
  EXPECT_FALSE(parse_i64_flag("--n", "101", 0, 100, v, err));
  EXPECT_FALSE(
      parse_i64_flag("--n", "99999999999999999999999", 0, 100, v, err));
}

TEST(CliParse, IntVariantNarrowsSafely) {
  int v = 0;
  std::ostringstream err;
  EXPECT_TRUE(parse_int_flag("--threads", "8", 1, 4096, v, err));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(parse_int_flag("--threads", "5000", 1, 4096, v, err));
}

TEST(CliParse, U64AcceptsHexAndDecimal) {
  u64 v = 0;
  std::ostringstream err;
  EXPECT_TRUE(parse_u64_flag("--seed", "0xD5E", v, err));
  EXPECT_EQ(v, 0xD5EULL);
  EXPECT_TRUE(parse_u64_flag("--seed", "12345", v, err));
  EXPECT_EQ(v, 12345ULL);
}

TEST(CliParse, U64RejectsNegativeAndJunk) {
  u64 v = 7;
  std::ostringstream err;
  EXPECT_FALSE(parse_u64_flag("--seed", "-1", v, err));  // strtoull would wrap
  EXPECT_FALSE(parse_u64_flag("--seed", "seed", v, err));
  EXPECT_FALSE(parse_u64_flag("--seed", "", v, err));
  EXPECT_EQ(v, 7ULL);
}

TEST(CliParse, DoubleAcceptsDecimalsAndInf) {
  double v = -1.0;
  const double inf = std::numeric_limits<double>::infinity();
  std::ostringstream err;
  EXPECT_TRUE(parse_double_flag("--promote-band", "0.05", 0.0, inf, v, err));
  EXPECT_EQ(v, 0.05);
  EXPECT_TRUE(parse_double_flag("--promote-band", "0", 0.0, inf, v, err));
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(parse_double_flag("--promote-band", "inf", 0.0, inf, v, err));
  EXPECT_TRUE(std::isinf(v));
  EXPECT_TRUE(err.str().empty());
}

TEST(CliParse, DoubleRejectsJunkRangeAndNan) {
  double v = 0.25;
  std::ostringstream err;
  EXPECT_FALSE(parse_double_flag("--promote-band", "band", 0.0, 1.0, v, err));
  EXPECT_NE(err.str().find("--promote-band"), std::string::npos);
  EXPECT_FALSE(parse_double_flag("--promote-band", "0.5x", 0.0, 1.0, v, err));
  EXPECT_FALSE(parse_double_flag("--promote-band", "", 0.0, 1.0, v, err));
  EXPECT_FALSE(parse_double_flag("--promote-band", "-0.1", 0.0, 1.0, v, err));
  EXPECT_FALSE(parse_double_flag("--promote-band", "2.0", 0.0, 1.0, v, err));
  EXPECT_FALSE(parse_double_flag("--promote-band", "nan", 0.0, 1.0, v, err));
  EXPECT_EQ(v, 0.25);  // untouched on failure
}

TEST(CliParse, EnumFlagRejectsUnknownValuesByFlagName) {
  // The silent-fallback failure mode: a typo'd --backend must fail the
  // parse (→ exit 1) with the flag named, never run a default sweep.
  dse::EvalBackend backend = dse::EvalBackend::kAnalytic;
  std::ostringstream err;
  EXPECT_FALSE(
      parse_enum_flag("--backend", "bogus", dse::parse_backend, backend, err));
  EXPECT_EQ(backend, dse::EvalBackend::kAnalytic);  // untouched
  EXPECT_NE(err.str().find("--backend"), std::string::npos);
  EXPECT_NE(err.str().find("bogus"), std::string::npos);

  std::ostringstream err2;
  dse::ObjectiveSet objectives;
  EXPECT_FALSE(parse_enum_flag("--objectives", "energy,throughput",
                               dse::ObjectiveSet::parse, objectives, err2));
  EXPECT_NE(err2.str().find("--objectives"), std::string::npos);
  EXPECT_NE(err2.str().find("throughput"), std::string::npos);
  // Untouched on failure: still the default core quartet.
  EXPECT_EQ(objectives.size(), static_cast<size_t>(dse::kCoreObjectiveCount));
}

TEST(CliParse, PromoteBudgetRejectsZeroByFlagName) {
  // apsq_dse parses --promote-budget with a lower bound of 1: a budget of
  // 0 would simulate nothing and report an empty front, so it must exit 1
  // naming the flag instead of running a useless sweep.
  i64 v = 77;
  std::ostringstream err;
  EXPECT_FALSE(
      parse_i64_flag("--promote-budget", "0", 1, i64{1} << 40, v, err));
  EXPECT_EQ(v, 77);  // untouched on failure
  EXPECT_NE(err.str().find("--promote-budget"), std::string::npos);
  EXPECT_NE(err.str().find("out of range"), std::string::npos);
  EXPECT_FALSE(
      parse_i64_flag("--promote-budget", "-5", 1, i64{1} << 40, v, err));
  EXPECT_TRUE(
      parse_i64_flag("--promote-budget", "100", 1, i64{1} << 40, v, err));
  EXPECT_EQ(v, 100);
}

TEST(CliParse, FlagRequiresNamesTheFlagAndTheRequirement) {
  // The --promote-budget-with---backend-analytic misuse: the flag is only
  // meaningful on the mixed backend, so the combination exits 1 with both
  // sides named rather than silently ignoring the budget.
  std::ostringstream err;
  EXPECT_FALSE(flag_requires(/*flag_given=*/true, "--promote-budget",
                             /*requirement_met=*/false, "--backend mixed",
                             err));
  EXPECT_NE(err.str().find("--promote-budget"), std::string::npos);
  EXPECT_NE(err.str().find("--backend mixed"), std::string::npos);
  // Flag absent, or requirement met: no complaint either way.
  std::ostringstream quiet;
  EXPECT_TRUE(flag_requires(false, "--promote-budget", false,
                            "--backend mixed", quiet));
  EXPECT_TRUE(flag_requires(true, "--promote-budget", true,
                            "--backend mixed", quiet));
  EXPECT_TRUE(quiet.str().empty());
}

TEST(CliParse, FlagsExclusiveNamesBothFlags) {
  std::ostringstream err;
  EXPECT_FALSE(flags_exclusive(true, "--promote-adaptive", true,
                               "--promote-budget", err));
  EXPECT_NE(err.str().find("--promote-adaptive"), std::string::npos);
  EXPECT_NE(err.str().find("--promote-budget"), std::string::npos);
  std::ostringstream quiet;
  EXPECT_TRUE(flags_exclusive(true, "--promote-adaptive", false,
                              "--promote-budget", quiet));
  EXPECT_TRUE(flags_exclusive(false, "--promote-adaptive", true,
                              "--promote-budget", quiet));
  EXPECT_TRUE(quiet.str().empty());
}

TEST(CliParse, EnumFlagParsesAllBackends) {
  dse::EvalBackend backend = dse::EvalBackend::kAnalytic;
  std::ostringstream err;
  EXPECT_TRUE(
      parse_enum_flag("--backend", "mixed", dse::parse_backend, backend, err));
  EXPECT_EQ(backend, dse::EvalBackend::kMixed);
  EXPECT_TRUE(
      parse_enum_flag("--backend", "sim", dse::parse_backend, backend, err));
  EXPECT_EQ(backend, dse::EvalBackend::kSim);
  EXPECT_TRUE(err.str().empty());
}

}  // namespace
}  // namespace apsq
