#include <gtest/gtest.h>

#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"

namespace apsq {
namespace {

void check_sane(const Workload& w) {
  EXPECT_FALSE(w.layers.empty()) << w.name;
  for (const auto& l : w.layers) {
    EXPECT_GT(l.rows, 0) << w.name << "/" << l.name;
    EXPECT_GT(l.ci, 0) << w.name << "/" << l.name;
    EXPECT_GT(l.co, 0) << w.name << "/" << l.name;
    EXPECT_GE(l.repeat, 1) << w.name << "/" << l.name;
    EXPECT_FALSE(l.name.empty());
  }
}

TEST(BertWorkload, Sane) { check_sane(bert_base_workload()); }

TEST(BertWorkload, MacCountBallpark) {
  // BERT-Base at 128 tokens: projections + FFN ≈ 11 GMACs (with the
  // per-head attention matmuls ≈ 0.3 G more).
  const i64 macs = bert_base_workload().total_macs();
  EXPECT_GT(macs, i64{10} * 1000 * 1000 * 1000);
  EXPECT_LT(macs, i64{13} * 1000 * 1000 * 1000);
}

TEST(BertWorkload, TwelveEncoderLayers) {
  const Workload w = bert_base_workload();
  for (const auto& l : w.layers) {
    if (l.name == "ffn_in") {
      EXPECT_EQ(l.repeat, 12);
      EXPECT_EQ(l.ci, 768);
      EXPECT_EQ(l.co, 3072);
    }
    if (l.name == "attn_scores") {
      EXPECT_EQ(l.repeat, 12 * 12);  // heads
    }
  }
}

TEST(BertWorkload, TokenLengthPropagates) {
  const Workload w = bert_base_workload(256);
  for (const auto& l : w.layers) {
    if (l.name == "qkv_proj") {
      EXPECT_EQ(l.rows, 256);
    }
  }
}

TEST(BertLarge, Ffn4096ForPsumPrecisionDiscussion) {
  // §II-A: BERT-Large MLP has Ci = 4096 -> 28-bit PSUM requirement.
  const Workload w = bert_large_workload();
  bool found = false;
  for (const auto& l : w.layers)
    if (l.name == "ffn_out") {
      EXPECT_EQ(l.ci, 4096);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(SegformerWorkload, Sane) { check_sane(segformer_b0_workload()); }

TEST(SegformerWorkload, StageTokenCounts) {
  const Workload w = segformer_b0_workload(512);
  // Stage 1 at stride 4 -> 128² = 16384 tokens (the layer that drives the
  // gs = 2 -> 3 WS spill crossover of Fig. 6b).
  bool found_stage1 = false;
  for (const auto& l : w.layers)
    if (l.name == "s1_q_proj") {
      EXPECT_EQ(l.rows, 16384);
      EXPECT_EQ(l.ci, 32);
      found_stage1 = true;
    }
  EXPECT_TRUE(found_stage1);
}

TEST(SegformerWorkload, MacCountBallpark) {
  const i64 macs = segformer_b0_workload().total_macs();
  // Segformer-B0 at 512x512 ≈ 8-9 GMACs in our GEMM inventory.
  EXPECT_GT(macs, i64{4} * 1000 * 1000 * 1000);
  EXPECT_LT(macs, i64{16} * 1000 * 1000 * 1000);
}

TEST(SegformerWorkload, RejectsUnalignedResolution) {
  EXPECT_THROW(segformer_b0_workload(500), std::logic_error);
}

TEST(EfficientVitWorkload, Sane) { check_sane(efficientvit_b1_workload()); }

TEST(EfficientVitWorkload, HasHighResolutionStem) {
  // The 256² stem rows are what keep EfficientViT spilling even at INT8
  // (Fig. 6b: 0.32 rather than Segformer's 0.13).
  const Workload w = efficientvit_b1_workload(512);
  bool found = false;
  for (const auto& l : w.layers)
    if (l.rows == 65536) found = true;
  EXPECT_TRUE(found);
}

TEST(LlamaWorkload, Sane) { check_sane(llama2_7b_workload()); }

TEST(LlamaWorkload, SevenProjectionsTimes32Layers) {
  const Workload w = llama2_7b_workload(4096);
  EXPECT_EQ(w.layers.size(), 7u);
  for (const auto& l : w.layers) {
    EXPECT_EQ(l.repeat, 32);
    EXPECT_EQ(l.rows, 4096);
  }
}

TEST(LlamaWorkload, ParameterCountMatches7B) {
  // Weight elements across the GEMM stack ≈ 6.5e9 (7B minus embeddings).
  const Workload w = llama2_7b_workload();
  i64 params = 0;
  for (const auto& l : w.layers) params += l.weight_elems() * l.repeat;
  EXPECT_GT(params, i64{6000} * 1000 * 1000);
  EXPECT_LT(params, i64{7000} * 1000 * 1000);
}

TEST(LlamaWorkload, DecodeStepIsVector) {
  const Workload w = llama2_7b_decode_step_workload();
  for (const auto& l : w.layers) EXPECT_EQ(l.rows, 1);
}

TEST(WorkloadTotals, MacsMatchManualSum) {
  Workload w;
  w.layers.push_back({"a", 2, 3, 4, 5});  // 2*3*4*5 = 120
  w.layers.push_back({"b", 1, 1, 1, 1});  // 1
  EXPECT_EQ(w.total_macs(), 121);
}

}  // namespace
}  // namespace apsq
