#include "dse/evaluator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "dse/pareto.hpp"
#include "dse/report.hpp"

namespace apsq::dse {
namespace {

DesignPoint bert_point(PsumConfig psum) {
  DesignPoint p;
  p.workload = "bert";
  p.dataflow = Dataflow::kWS;
  p.psum = psum;
  return p;
}

TEST(Evaluator, ObjectivesAreSane) {
  Evaluator eval;
  const EvalResult base = eval.evaluate(bert_point(PsumConfig::baseline_int32()));
  const EvalResult apsq8 = eval.evaluate(bert_point(PsumConfig::apsq_int8(2)));

  // APSQ INT8 saves energy vs the INT32 baseline (the paper's headline).
  EXPECT_LT(apsq8.obj.energy_pj, base.obj.energy_pj);
  // Full-precision storage has zero quantization error; APSQ has some.
  EXPECT_EQ(base.obj.error, 0.0);
  EXPECT_GT(apsq8.obj.error, 0.0);
  // The RAE costs area on top of the baseline accelerator.
  EXPECT_GT(apsq8.obj.area_um2, base.obj.area_um2);
  EXPECT_GT(base.obj.area_um2, 0.0);
}

TEST(Evaluator, ErrorProxyImprovesWithBitsAndGroupSize) {
  Evaluator eval;
  const double e4 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 1))).obj.error;
  const double e8 = eval.evaluate(bert_point(PsumConfig::apsq_bits(8, 1))).obj.error;
  EXPECT_GT(e4, e8);  // fewer bits, more error (Fig. 5 trend)

  const double gs1 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 1))).obj.error;
  const double gs4 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 4))).obj.error;
  EXPECT_GE(gs1, gs4);  // larger groups fold history less often (§III-B)
}

TEST(Evaluator, RepeatedEvaluationHitsTheCacheAndMatches) {
  Evaluator eval;
  const DesignPoint p = bert_point(PsumConfig::apsq_int8(2));
  const EvalResult a = eval.evaluate(p);
  const CacheStats after_first = eval.energy_cache_stats();
  EXPECT_EQ(after_first.misses, 1);
  EXPECT_EQ(after_first.hits, 0);

  const EvalResult b = eval.evaluate(p);
  const CacheStats after_second = eval.energy_cache_stats();
  EXPECT_EQ(after_second.misses, 1);
  EXPECT_EQ(after_second.hits, 1);

  // Bit-identical, not just close.
  EXPECT_EQ(a.obj.energy_pj, b.obj.energy_pj);
  EXPECT_EQ(a.obj.area_um2, b.obj.area_um2);
  EXPECT_EQ(a.obj.error, b.obj.error);
}

TEST(Evaluator, SubEvaluationCachesShareAcrossPoints) {
  // Same geometry + psum mode, different dataflow: area and accuracy are
  // sub-key cache hits even though the full points differ.
  Evaluator eval;
  DesignPoint a = bert_point(PsumConfig::apsq_int8(2));
  DesignPoint b = a;
  b.dataflow = Dataflow::kIS;
  eval.evaluate(a);
  eval.evaluate(b);
  EXPECT_EQ(eval.area_cache_stats().hits, 1);
  EXPECT_EQ(eval.accuracy_cache_stats().hits, 1);
  EXPECT_EQ(eval.energy_cache_stats().hits, 0);  // energy depends on dataflow
}

TEST(Evaluator, ParallelEqualsSerialByteIdentical) {
  const ConfigSpace space = ConfigSpace::smoke();

  EvaluatorOptions serial_opt;
  serial_opt.threads = 1;
  Evaluator serial(serial_opt);
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space)).to_string();

  for (int threads : {2, 4}) {
    EvaluatorOptions par_opt;
    par_opt.threads = threads;
    Evaluator parallel(par_opt);
    const std::string par_csv =
        results_csv(parallel.evaluate_space(space)).to_string();
    EXPECT_EQ(serial_csv, par_csv) << "threads=" << threads;
  }
}

TEST(Evaluator, SeedChangesProxyButNotEnergyOrArea) {
  EvaluatorOptions a_opt, b_opt;
  a_opt.seed = 1;
  b_opt.seed = 2;
  Evaluator a(a_opt), b(b_opt);
  const DesignPoint p = bert_point(PsumConfig::apsq_bits(4, 1));
  const EvalResult ra = a.evaluate(p), rb = b.evaluate(p);
  EXPECT_EQ(ra.obj.energy_pj, rb.obj.energy_pj);
  EXPECT_EQ(ra.obj.area_um2, rb.obj.area_um2);
  EXPECT_NE(ra.obj.error, rb.obj.error);  // different synthetic tile stream
}

TEST(Evaluator, PaperSweepFrontIsVerifiedNonDominated) {
  // The acceptance sweep: ≥500 points across all four workloads; every
  // front point must be non-dominated within the full result set and
  // every non-front point dominated by someone.
  const ConfigSpace space = ConfigSpace::paper_default();
  ASSERT_GE(space.size(), 500);

  EvaluatorOptions opt;
  opt.threads = 4;
  Evaluator eval(opt);
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  ASSERT_EQ(static_cast<index_t>(results.size()), space.size());

  const std::vector<EvalResult> front = pareto_front(results);
  ASSERT_FALSE(front.empty());
  ASSERT_LT(front.size(), results.size());
  for (const EvalResult& f : front)
    EXPECT_FALSE(is_dominated(f, results)) << canonical_key(f.point);

  std::set<std::string> front_keys;
  for (const EvalResult& f : front) front_keys.insert(canonical_key(f.point));
  for (const EvalResult& r : results)
    if (!front_keys.count(canonical_key(r.point)))
      EXPECT_TRUE(is_dominated(r, results)) << canonical_key(r.point);

  // Per-workload (scenario) front: every point non-dominated within the
  // subset that shares its workload.
  for (const EvalResult& f : pareto_front_by_workload(results)) {
    std::vector<EvalResult> same;
    for (const EvalResult& r : results)
      if (r.point.workload == f.point.workload) same.push_back(r);
    EXPECT_FALSE(is_dominated(f, same)) << canonical_key(f.point);
  }
}

TEST(Evaluator, UnknownWorkloadThrows) {
  Evaluator eval;
  DesignPoint p = bert_point(PsumConfig::apsq_int8(1));
  p.workload = "resnet";
  EXPECT_THROW(eval.evaluate(p), std::logic_error);
}

TEST(Evaluator, WorkloadRegistryServesAllFour) {
  for (const char* name : {"bert", "llama2", "segformer", "efficientvit"})
    EXPECT_FALSE(Evaluator::workload(name).layers.empty()) << name;
}

}  // namespace
}  // namespace apsq::dse
