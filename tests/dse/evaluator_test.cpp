#include "dse/evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "dse/pareto.hpp"
#include "dse/report.hpp"

namespace apsq::dse {
namespace {

DesignPoint bert_point(PsumConfig psum) {
  DesignPoint p;
  p.workload = "bert";
  p.dataflow = Dataflow::kWS;
  p.psum = psum;
  return p;
}

TEST(Evaluator, ObjectivesAreSane) {
  Evaluator eval;
  const EvalResult base = eval.evaluate(bert_point(PsumConfig::baseline_int32()));
  const EvalResult apsq8 = eval.evaluate(bert_point(PsumConfig::apsq_int8(2)));

  // APSQ INT8 saves energy vs the INT32 baseline (the paper's headline).
  EXPECT_LT(apsq8.obj.energy_pj, base.obj.energy_pj);
  // Full-precision storage has zero quantization error; APSQ has some.
  EXPECT_EQ(base.obj.error, 0.0);
  EXPECT_GT(apsq8.obj.error, 0.0);
  // The RAE costs area on top of the baseline accelerator.
  EXPECT_GT(apsq8.obj.area_um2, base.obj.area_um2);
  EXPECT_GT(base.obj.area_um2, 0.0);
}

TEST(Evaluator, ErrorProxyImprovesWithBitsAndGroupSize) {
  Evaluator eval;
  const double e4 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 1))).obj.error;
  const double e8 = eval.evaluate(bert_point(PsumConfig::apsq_bits(8, 1))).obj.error;
  EXPECT_GT(e4, e8);  // fewer bits, more error (Fig. 5 trend)

  const double gs1 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 1))).obj.error;
  const double gs4 = eval.evaluate(bert_point(PsumConfig::apsq_bits(4, 4))).obj.error;
  EXPECT_GE(gs1, gs4);  // larger groups fold history less often (§III-B)
}

TEST(Evaluator, RepeatedEvaluationHitsTheCacheAndMatches) {
  Evaluator eval;
  const DesignPoint p = bert_point(PsumConfig::apsq_int8(2));
  const EvalResult a = eval.evaluate(p);
  EXPECT_EQ(eval.score_tt_stats().misses, 1);
  EXPECT_EQ(eval.score_tt_stats().hits, 0);
  EXPECT_EQ(eval.energy_cache_stats().misses, 1);

  const EvalResult b = eval.evaluate(p);
  // The repeat is a whole-result transposition-table hit — the sub-caches
  // are never consulted again.
  EXPECT_EQ(eval.score_tt_stats().misses, 1);
  EXPECT_EQ(eval.score_tt_stats().hits, 1);
  EXPECT_EQ(eval.energy_cache_stats().lookups(), 1);

  // Bit-identical, not just close.
  EXPECT_EQ(a.obj.energy_pj, b.obj.energy_pj);
  EXPECT_EQ(a.obj.area_um2, b.obj.area_um2);
  EXPECT_EQ(a.obj.error, b.obj.error);
}

TEST(Evaluator, SubEvaluationCachesShareAcrossPoints) {
  // Same geometry + psum mode, different dataflow: area and accuracy are
  // sub-key cache hits even though the full points differ.
  Evaluator eval;
  DesignPoint a = bert_point(PsumConfig::apsq_int8(2));
  DesignPoint b = a;
  b.dataflow = Dataflow::kIS;
  eval.evaluate(a);
  eval.evaluate(b);
  EXPECT_EQ(eval.area_cache_stats().hits, 1);
  EXPECT_EQ(eval.accuracy_cache_stats().hits, 1);
  EXPECT_EQ(eval.energy_cache_stats().hits, 0);  // energy depends on dataflow
}

TEST(Evaluator, ParallelEqualsSerialByteIdentical) {
  const ConfigSpace space = ConfigSpace::smoke();

  EvaluatorOptions serial_opt;
  serial_opt.threads = 1;
  Evaluator serial(serial_opt);
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space)).to_string();

  for (int threads : {2, 4}) {
    EvaluatorOptions par_opt;
    par_opt.threads = threads;
    Evaluator parallel(par_opt);
    const std::string par_csv =
        results_csv(parallel.evaluate_space(space)).to_string();
    EXPECT_EQ(serial_csv, par_csv) << "threads=" << threads;
  }
}

TEST(Evaluator, CacheStatsReconcileWithLookups) {
  // hits + misses + races must equal the lookup count for any schedule —
  // the races counter absorbs duplicate computes under contention. The
  // whole-result score TT fronts the sub-caches, so the warm re-run is
  // pure score-TT hits and never reaches them.
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions opt;
  opt.threads = 4;
  Evaluator eval(opt);
  eval.evaluate_space(space);
  eval.evaluate_space(space);  // warm re-run: all score-TT hits
  const i64 cold = space.size();
  const CacheStats ss = eval.score_tt_stats();
  EXPECT_EQ(ss.lookups(), 2 * cold);
  // Distinct-key counts are schedule-independent: misses + races ==
  // first-run computes, and the warm run added pure hits.
  EXPECT_EQ(ss.misses + ss.races, cold);
  EXPECT_EQ(ss.hits, cold);
  // The sub-caches saw exactly the cold computes, once each.
  EXPECT_EQ(eval.energy_cache_stats().lookups(), cold);
  EXPECT_EQ(eval.area_cache_stats().lookups(), cold);
  EXPECT_EQ(eval.accuracy_cache_stats().lookups(), cold);
  EXPECT_EQ(eval.latency_cache_stats().lookups(), cold);
  const CacheStats es = eval.energy_cache_stats();
  EXPECT_EQ(es.misses + es.races, cold);  // all smoke keys are distinct
}

TEST(Evaluator, RepeatedCallsReuseThePersistentPool) {
  // Pool ownership is hoisted into the evaluator: back-to-back
  // evaluate_points calls are served by the same workers and stay
  // bit-identical to the first answer.
  EvaluatorOptions opt;
  opt.threads = 4;
  Evaluator eval(opt);
  const std::vector<DesignPoint> pts = {
      bert_point(PsumConfig::baseline_int32()),
      bert_point(PsumConfig::apsq_int8(1)),
      bert_point(PsumConfig::apsq_int8(4))};
  const std::vector<EvalResult> first = eval.evaluate_points(pts);
  for (int call = 0; call < 10; ++call) {
    const std::vector<EvalResult> again = eval.evaluate_points(pts);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].obj.energy_pj, first[i].obj.energy_pj);
      EXPECT_EQ(again[i].obj.latency_s, first[i].obj.latency_s);
    }
  }
}

TEST(Evaluator, LatencyObjectiveMatchesPerformanceModel) {
  Evaluator eval;
  const DesignPoint p = bert_point(PsumConfig::apsq_int8(2));
  const EvalResult r = eval.evaluate(p);
  EXPECT_GT(r.obj.latency_s, 0.0);
  const WorkloadPerformance perf = workload_performance(
      p.dataflow, Evaluator::workload(p.workload), p.acc, p.psum);
  EXPECT_EQ(r.obj.latency_s, perf.total_latency_s);
}

EvaluatorOptions sim_opt(int threads) {
  EvaluatorOptions opt;
  opt.threads = threads;
  opt.backend = EvalBackend::kSim;
  opt.sim.shrink = 32;
  opt.sim.max_dim = 32;
  return opt;
}

TEST(Evaluator, SimBackendParallelEqualsSerialByteIdentical) {
  // The acceptance property behind `apsq_dse --backend sim
  // --verify-serial`: simulator-backed sweeps stay deterministic across
  // thread counts.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator serial(sim_opt(1));
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space)).to_string();
  for (int threads : {2, 4}) {
    Evaluator parallel(sim_opt(threads));
    EXPECT_EQ(serial_csv,
              results_csv(parallel.evaluate_space(space)).to_string())
        << "threads=" << threads;
  }
}

TEST(Evaluator, SimBackendLayerParallelismIsDeterministic) {
  // Single-threaded evaluator + multi-threaded sim runner (layers run on
  // the shared pool): scores must match the fully serial configuration
  // exactly.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator serial(sim_opt(1));
  EvaluatorOptions layer_par = sim_opt(1);
  layer_par.sim.threads = 4;
  Evaluator parallel(layer_par);
  EXPECT_EQ(results_csv(serial.evaluate_space(space)).to_string(),
            results_csv(parallel.evaluate_space(space)).to_string());
}

TEST(Evaluator, NestedPointAndLayerParallelismMatchesFullySerial) {
  // The tentpole determinism property: point-level and layer-level
  // parallelism composed as nested scopes on the process-wide shared pool
  // must stay byte-identical to the fully serial evaluator.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator serial(sim_opt(1));  // sim.threads defaults to 1 → fully serial
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space)).to_string();

  EvaluatorOptions nested = sim_opt(4);
  nested.sim.threads = 4;
  Evaluator parallel(nested);
  EXPECT_EQ(serial_csv, results_csv(parallel.evaluate_space(space)).to_string());

  // And with calibration on: anchor fits race-free and deterministic.
  EvaluatorOptions cal_serial = sim_opt(1);
  cal_serial.calibrate = true;
  EvaluatorOptions cal_nested = sim_opt(4);
  cal_nested.sim.threads = 4;
  cal_nested.calibrate = true;
  Evaluator cs(cal_serial), cn(cal_nested);
  EXPECT_EQ(results_csv(cs.evaluate_space(space)).to_string(),
            results_csv(cn.evaluate_space(space)).to_string());
}

TEST(Evaluator, SimBackendScoresMeasuredObjectives) {
  Evaluator eval(sim_opt(1));
  const EvalResult base = eval.evaluate(bert_point(PsumConfig::baseline_int32()));
  const EvalResult apsq8 = eval.evaluate(bert_point(PsumConfig::apsq_int8(2)));
  // The paper's headline must also hold on measured traffic.
  EXPECT_GT(base.obj.energy_pj, 0.0);
  EXPECT_LT(apsq8.obj.energy_pj, base.obj.energy_pj);
  EXPECT_GT(apsq8.obj.latency_s, 0.0);
  // Area and the accuracy proxy are backend-independent.
  Evaluator analytic;
  const EvalResult a = analytic.evaluate(bert_point(PsumConfig::apsq_int8(2)));
  EXPECT_EQ(apsq8.obj.area_um2, a.obj.area_um2);
  EXPECT_EQ(apsq8.obj.error, a.obj.error);
  // Sim scores are of the scaled proxy workload — far below full scale.
  EXPECT_LT(apsq8.obj.energy_pj, a.obj.energy_pj);
}

TEST(Evaluator, SimBackendHandlesOsApsqPoints) {
  // OS keeps PSUMs in PE registers; the simulator refuses OS+APSQ, so the
  // evaluator maps it to the traffic-equivalent INT32 baseline.
  Evaluator eval(sim_opt(1));
  DesignPoint p = bert_point(PsumConfig::apsq_int8(2));
  p.dataflow = Dataflow::kOS;
  const EvalResult r = eval.evaluate(p);
  DesignPoint base = p;
  base.psum = PsumConfig::baseline_int32();
  EXPECT_EQ(r.obj.energy_pj, eval.evaluate(base).obj.energy_pj);
}

TEST(Evaluator, SeedChangesProxyButNotEnergyOrArea) {
  EvaluatorOptions a_opt, b_opt;
  a_opt.seed = 1;
  b_opt.seed = 2;
  Evaluator a(a_opt), b(b_opt);
  const DesignPoint p = bert_point(PsumConfig::apsq_bits(4, 1));
  const EvalResult ra = a.evaluate(p), rb = b.evaluate(p);
  EXPECT_EQ(ra.obj.energy_pj, rb.obj.energy_pj);
  EXPECT_EQ(ra.obj.area_um2, rb.obj.area_um2);
  EXPECT_NE(ra.obj.error, rb.obj.error);  // different synthetic tile stream
}

TEST(Evaluator, PaperSweepFrontIsVerifiedNonDominated) {
  // The acceptance sweep: ≥500 points across all four workloads; every
  // front point must be non-dominated within the full result set and
  // every non-front point dominated by someone.
  const ConfigSpace space = ConfigSpace::paper_default();
  ASSERT_GE(space.size(), 500);

  EvaluatorOptions opt;
  opt.threads = 4;
  Evaluator eval(opt);
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  ASSERT_EQ(static_cast<index_t>(results.size()), space.size());

  const std::vector<EvalResult> front = pareto_front(results);
  ASSERT_FALSE(front.empty());
  ASSERT_LT(front.size(), results.size());
  for (const EvalResult& f : front)
    EXPECT_FALSE(is_dominated(f, results)) << canonical_key(f.point);

  std::set<std::string> front_keys;
  for (const EvalResult& f : front) front_keys.insert(canonical_key(f.point));
  for (const EvalResult& r : results) {
    if (!front_keys.count(canonical_key(r.point))) {
      EXPECT_TRUE(is_dominated(r, results)) << canonical_key(r.point);
    }
  }

  // Per-workload (scenario) front: every point non-dominated within the
  // subset that shares its workload.
  for (const EvalResult& f : pareto_front_by_workload(results)) {
    std::vector<EvalResult> same;
    for (const EvalResult& r : results)
      if (r.point.workload == f.point.workload) same.push_back(r);
    EXPECT_FALSE(is_dominated(f, same)) << canonical_key(f.point);
  }
}

TEST(Evaluator, UnknownWorkloadThrows) {
  Evaluator eval;
  DesignPoint p = bert_point(PsumConfig::apsq_int8(1));
  p.workload = "resnet";
  EXPECT_THROW(eval.evaluate(p), std::logic_error);
}

TEST(Evaluator, WorkloadRegistryServesAllFour) {
  for (const char* name : {"bert", "llama2", "segformer", "efficientvit"})
    EXPECT_FALSE(Evaluator::workload(name).layers.empty()) << name;
}

TEST(Evaluator, NewObjectivesAreSaneOnBothBackends) {
  Evaluator analytic;
  EvaluatorOptions sopt;
  sopt.backend = EvalBackend::kSim;
  sopt.sim.shrink = 32;
  sopt.sim.max_dim = 32;
  Evaluator sim(sopt);
  const DesignPoint p = bert_point(PsumConfig::baseline_int32());
  for (Evaluator* e : {&analytic, &sim}) {
    const EvalResult r = e->evaluate(p);
    EXPECT_GT(r.obj.pe_utilization, 0.0) << r.scored_by;
    EXPECT_LE(r.obj.pe_utilization, 1.0) << r.scored_by;
    EXPECT_GE(r.obj.dram_bw_headroom, 0.0) << r.scored_by;
    EXPECT_LE(r.obj.dram_bw_headroom, 1.0) << r.scored_by;
    EXPECT_GT(r.obj.throughput_per_area, 0.0) << r.scored_by;
  }
}

TEST(Evaluator, NewObjectivesMatchTelemetry) {
  // The scoring hot path computes pe_utilization / dram_bw_headroom with
  // allocation-free helpers; the dump path rebuilds them from the
  // telemetry registry. Both derivations must agree exactly, on both
  // fidelities.
  Evaluator analytic;
  const DesignPoint p = bert_point(PsumConfig::apsq_int8(2));
  const EvalResult a = analytic.evaluate(p);
  const WorkloadTelemetry at =
      analytic.telemetry_for(p, EvalBackend::kAnalytic);
  EXPECT_EQ(at.source, "analytic");
  EXPECT_EQ(at.roll_up().mean_utilization, a.obj.pe_utilization);
  EXPECT_EQ(std::max(0.0, 1.0 - at.dram_bw_occupancy()),
            a.obj.dram_bw_headroom);

  EvaluatorOptions sopt;
  sopt.backend = EvalBackend::kSim;
  sopt.sim.shrink = 32;
  sopt.sim.max_dim = 32;
  Evaluator sim(sopt);
  const EvalResult s = sim.evaluate(p);
  const WorkloadTelemetry st = sim.telemetry_for(p, EvalBackend::kSim);
  EXPECT_EQ(st.source, "sim");
  EXPECT_EQ(st.workload, "bert");
  EXPECT_EQ(st.roll_up().mean_utilization, s.obj.pe_utilization);
  EXPECT_EQ(std::max(0.0, 1.0 - st.dram_bw_occupancy()),
            s.obj.dram_bw_headroom);
}

TEST(Evaluator, NewObjectiveFrontParallelEqualsSerialByteIdentical) {
  // The acceptance property behind `apsq_dse --objectives
  // energy,latency,pe_utilization,dram_bw_headroom --verify-serial`:
  // fronts over maximize objectives stay deterministic across threads.
  const ConfigSpace space = ConfigSpace::smoke();
  const ObjectiveSet objectives =
      ObjectiveSet::parse("energy,latency,pe_utilization,dram_bw_headroom");

  EvaluatorOptions serial_opt;
  serial_opt.threads = 1;
  Evaluator serial(serial_opt);
  const std::string serial_csv =
      results_csv(pareto_front_by_workload(serial.evaluate_space(space),
                                           objectives))
          .to_string();
  EXPECT_NE(serial_csv.find("pe_utilization"), std::string::npos);
  EXPECT_NE(serial_csv.find("dram_bw_headroom"), std::string::npos);
  EXPECT_NE(serial_csv.find("throughput_per_area"), std::string::npos);

  for (int threads : {2, 4}) {
    EvaluatorOptions par_opt;
    par_opt.threads = threads;
    Evaluator parallel(par_opt);
    EXPECT_EQ(serial_csv,
              results_csv(pareto_front_by_workload(
                              parallel.evaluate_space(space), objectives))
                  .to_string())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace apsq::dse
