#include "dse/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace apsq::dse {
namespace {

TEST(WorkStealingPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    WorkStealingPool pool(threads);
    constexpr index_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.parallel_for(n, [&](index_t i) { ++hits[static_cast<size_t>(i)]; });
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "i=" << i << " threads=" << threads;
  }
}

TEST(WorkStealingPool, MoreThreadsThanTasks) {
  WorkStealingPool pool(8);
  std::atomic<index_t> sum{0};
  pool.parallel_for(3, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 3);
}

TEST(WorkStealingPool, ZeroTasksIsANoOp) {
  WorkStealingPool pool(4);
  pool.parallel_for(0, [](index_t) { FAIL() << "must not be called"; });
}

TEST(WorkStealingPool, SingleThreadRunsInline) {
  WorkStealingPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](index_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(pool.steal_count(), 0);
}

TEST(WorkStealingPool, SkewedTasksGetStolen) {
  // Worker 0's chunk is made pathologically slow; with stealing the other
  // workers take over the tail of its deque.
  WorkStealingPool pool(4);
  constexpr index_t n = 64;
  std::atomic<int> done{0};
  pool.parallel_for(n, [&](index_t i) {
    if (i < n / 4)  // worker 0's initial chunk
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++done;
  });
  EXPECT_EQ(done.load(), n);
  if (std::thread::hardware_concurrency() > 1)
    EXPECT_GT(pool.steal_count(), 0);
}

TEST(WorkStealingPool, FirstExceptionPropagates) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](index_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(WorkStealingPool, RejectsZeroThreads) {
  EXPECT_THROW(WorkStealingPool(0), std::logic_error);
}

TEST(WorkStealingPool, HardwareThreadsPositive) {
  EXPECT_GE(WorkStealingPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace apsq::dse
