// The sweep engine's contract: SweepConfig::validate() is the single
// authority on cross-field consistency (same messages the CLI used to
// print), constraint filters parse strictly, scoring_key() separates what
// changes result values from what doesn't, and a SweepSession reproduces
// the hand-assembled orchestration byte-for-byte.
#include "dse/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "dse/names.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"

namespace apsq::dse {
namespace {

std::string validate_message(const SweepConfig& cfg) {
  std::ostringstream err;
  EXPECT_FALSE(cfg.validate(err));
  return err.str();
}

TEST(SweepConfig, DefaultConfigValidates) {
  std::ostringstream err;
  EXPECT_TRUE(SweepConfig{}.validate(err));
  EXPECT_EQ(err.str(), "");
}

TEST(SweepConfig, ValidateMessagesMatchTheCliFlagRules) {
  SweepConfig c;
  c.space = "nope";
  EXPECT_EQ(validate_message(c), "unknown space: nope (try --help)\n");

  c = SweepConfig{};
  c.calibrate = true;
  EXPECT_EQ(validate_message(c),
            "--calibrate: requires --backend sim or mixed\n");

  c = SweepConfig{};
  c.promote_band_set = true;
  EXPECT_EQ(validate_message(c),
            "--promote-band: requires --backend mixed\n");

  c = SweepConfig{};
  c.promote_adaptive = true;
  EXPECT_EQ(validate_message(c),
            "--promote-adaptive: requires --backend mixed\n");

  c = SweepConfig{};
  c.promote_budget = 4;
  c.promote_budget_set = true;
  EXPECT_EQ(validate_message(c),
            "--promote-budget: requires --backend mixed\n");

  c = SweepConfig{};
  c.promote_objectives_set = true;
  EXPECT_EQ(validate_message(c),
            "--promote-objectives: requires --backend mixed\n");

  c = SweepConfig{};
  c.backend = EvalBackend::kMixed;
  c.promote_band_set = true;
  c.promote_adaptive = true;
  EXPECT_EQ(validate_message(c),
            "--promote-band and --promote-adaptive are mutually exclusive\n");

  c = SweepConfig{};
  c.backend = EvalBackend::kMixed;
  c.promote_adaptive = true;
  c.promote_budget = 4;
  c.promote_budget_set = true;
  EXPECT_EQ(
      validate_message(c),
      "--promote-adaptive and --promote-budget are mutually exclusive\n");

  c = SweepConfig{};
  c.calibration_csv = "cal.csv";
  EXPECT_EQ(validate_message(c),
            "--calibration-csv: requires --calibrate or --backend mixed\n");

  c = SweepConfig{};
  c.calibrate_per_class = true;
  EXPECT_EQ(validate_message(c),
            "--calibrate-per-class: requires --calibrate or --backend mixed\n");
}

TEST(SweepConfig, SessionConstructorEnforcesValidation) {
  SweepConfig c;
  c.calibrate = true;  // analytic backend: inconsistent
  EXPECT_THROW(SweepSession{c}, std::invalid_argument);
}

TEST(SweepConfig, ScoringKeyIgnoresThreadsSlicingAndOutputs) {
  SweepConfig a;
  a.threads = 1;
  SweepConfig b;
  b.threads = 7;
  b.objectives = ObjectiveSet::parse("energy,latency");
  b.store_out = "x.json";
  EXPECT_EQ(a.scoring_key(), b.scoring_key());
}

TEST(SweepConfig, ScoringKeySeparatesValueChangingKnobs) {
  const SweepConfig base;
  SweepConfig c = base;
  c.seed = 1;
  EXPECT_NE(c.scoring_key(), base.scoring_key());
  c = base;
  c.backend = EvalBackend::kSim;
  EXPECT_NE(c.scoring_key(), base.scoring_key());
  // Sim scaling is irrelevant to the analytic backend but part of the sim
  // identity.
  SweepConfig an = base;
  an.shrink = 16;
  EXPECT_EQ(an.scoring_key(), base.scoring_key());
  SweepConfig sim = base;
  sim.backend = EvalBackend::kSim;
  SweepConfig sim2 = sim;
  sim2.shrink = 16;
  EXPECT_NE(sim2.scoring_key(), sim.scoring_key());
  // The promotion rule and plane are part of the mixed identity only.
  SweepConfig mx = base;
  mx.backend = EvalBackend::kMixed;
  SweepConfig mx2 = mx;
  mx2.promote_band = 0.2;
  mx2.promote_band_set = true;
  EXPECT_NE(mx2.scoring_key(), mx.scoring_key());
  SweepConfig mx3 = mx;
  mx3.promote_objectives = ObjectiveSet::parse("energy,latency");
  mx3.promote_objectives_set = true;
  EXPECT_NE(mx3.scoring_key(), mx.scoring_key());
}

TEST(SweepConfig, EffectivePromoteObjectivesFollowObjectivesUnlessPinned) {
  SweepConfig c;
  c.objectives = ObjectiveSet::parse("energy,latency");
  EXPECT_EQ(c.effective_promote_objectives().to_string(), "energy,latency");
  c.promote_objectives = ObjectiveSet::parse("energy,area");
  c.promote_objectives_set = true;
  EXPECT_EQ(c.effective_promote_objectives().to_string(), "energy,area");
}

TEST(Constraints, ParseAcceptsBothSensesAndLists) {
  const auto cs = parse_constraints("area<=2.5e6,pe_utilization>=0.5");
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].objective, Objective::kArea);
  EXPECT_TRUE(cs[0].upper_bound);
  EXPECT_DOUBLE_EQ(cs[0].bound, 2.5e6);
  EXPECT_EQ(cs[1].objective, Objective::kPeUtilization);
  EXPECT_FALSE(cs[1].upper_bound);
  EXPECT_DOUBLE_EQ(cs[1].bound, 0.5);
  EXPECT_TRUE(parse_constraints("").empty());
}

TEST(Constraints, ParseRejectsUnknownNamesAndMalformedTerms) {
  EXPECT_THROW(parse_constraints("watts<=1"), std::invalid_argument);
  EXPECT_THROW(parse_constraints("area=1"), std::invalid_argument);
  EXPECT_THROW(parse_constraints("area<=abc"), std::invalid_argument);
  EXPECT_THROW(parse_constraints("<=5"), std::invalid_argument);
}

TEST(Constraints, UnknownNameErrorNamesTheMetricAndListsValid) {
  // The fix must be in the error: the mistyped metric by name, plus the
  // full valid-name list.
  try {
    parse_constraints("frobnication<=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown objective in constraint: frobnication"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find(objective_name_list()), std::string::npos) << msg;
  }
}

TEST(SweepConfig, ParseRunModeRoundTripsAndRejects) {
  EXPECT_EQ(parse_run_mode("sweep"), RunMode::kSweep);
  EXPECT_EQ(parse_run_mode("search"), RunMode::kSearch);
  EXPECT_EQ(to_string(RunMode::kSweep), std::string("sweep"));
  EXPECT_EQ(to_string(RunMode::kSearch), std::string("search"));
  EXPECT_THROW(parse_run_mode("bogus"), std::invalid_argument);
}

TEST(SweepConfig, SearchValidateRulesMatchTheCliFlagRules) {
  SweepConfig c;
  c.strategy_set = true;
  EXPECT_EQ(validate_message(c), "--strategy: requires --mode search\n");

  c = SweepConfig{};
  c.budget = 8;
  c.budget_set = true;
  EXPECT_EQ(validate_message(c), "--budget: requires --mode search\n");

  c = SweepConfig{};
  c.search_seed_set = true;
  EXPECT_EQ(validate_message(c), "--search-seed: requires --mode search\n");

  c = SweepConfig{};
  c.mode = RunMode::kSearch;
  EXPECT_EQ(validate_message(c), "--mode search: requires --budget >= 1\n");

  c = SweepConfig{};
  c.mode = RunMode::kSearch;
  c.budget = 8;
  c.budget_set = true;
  c.strategy = SearchStrategy::kHalving;
  c.strategy_set = true;
  EXPECT_EQ(validate_message(c),
            "--strategy halving: requires --backend mixed\n");

  c = SweepConfig{};
  c.mode = RunMode::kSearch;
  c.budget = 8;
  c.budget_set = true;
  c.backend = EvalBackend::kMixed;
  c.strategy = SearchStrategy::kEvolve;
  c.strategy_set = true;
  EXPECT_EQ(validate_message(c),
            "--strategy evolve: requires --backend analytic or sim\n");
}

TEST(SweepConfig, FineSpaceRequiresSearchMode) {
  SweepConfig c;
  c.space = "fine";
  const std::string msg = validate_message(c);
  EXPECT_NE(msg.find("beyond exhaustive sweep"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--mode search"), std::string::npos) << msg;

  c.mode = RunMode::kSearch;
  c.budget = 64;
  c.budget_set = true;
  std::ostringstream err;
  EXPECT_TRUE(c.validate(err)) << err.str();
}

TEST(SweepConfig, ScoringKeySeparatesSearchKnobs) {
  SweepConfig sweep;
  sweep.space = "smoke";
  SweepConfig search = sweep;
  search.mode = RunMode::kSearch;
  search.budget = 8;
  search.budget_set = true;
  // A search answer set is not a sweep answer set, and every search knob
  // changes which points exist in it.
  EXPECT_NE(sweep.scoring_key(), search.scoring_key());
  SweepConfig seed2 = search;
  seed2.search_seed = 2;
  seed2.search_seed_set = true;
  EXPECT_NE(search.scoring_key(), seed2.scoring_key());
  SweepConfig budget9 = search;
  budget9.budget = 9;
  EXPECT_NE(search.scoring_key(), budget9.scoring_key());
  // Thread count stays value-irrelevant in search mode too — that is the
  // determinism contract.
  SweepConfig threads = search;
  threads.threads = 7;
  EXPECT_EQ(search.scoring_key(), threads.scoring_key());
}

TEST(Constraints, FilterKeepsExactlyTheSatisfyingResults) {
  std::vector<EvalResult> rs(3);
  rs[0].obj.area_um2 = 1.0;
  rs[1].obj.area_um2 = 2.0;
  rs[2].obj.area_um2 = 3.0;
  const auto kept = filter_results(rs, parse_constraints("area<=2"));
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[1].obj.area_um2, 2.0);
}

TEST(SweepSession, SmokeSweepMatchesHandAssembledOrchestration) {
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  EXPECT_EQ(out.results.size(), 8u);
  EXPECT_EQ(out.fresh_evaluations, 8);
  EXPECT_EQ(out.store_hits, 0);
  // The front the session extracts is the front the pareto machinery
  // extracts from the same results.
  const auto expect = pareto_front_by_workload(out.results, cfg.objectives);
  EXPECT_EQ(results_csv(out.front).to_string(),
            results_csv(expect).to_string());
  EXPECT_EQ(out.global_front_size,
            pareto_front(out.results, cfg.objectives).size());
}

TEST(SweepSession, WhereFilterShrinksTheFrontBasis) {
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  cfg.objectives = ObjectiveSet::parse("energy,latency");
  SweepSession unfiltered(cfg);
  const SweepOutcome all = unfiltered.run();
  // Constrain area below the smallest value present: nothing survives.
  cfg.where = "area<=1";
  SweepSession filtered(cfg);
  const SweepOutcome none = filtered.run();
  EXPECT_GT(all.front.size(), 0u);
  EXPECT_EQ(none.front.size(), 0u);
  EXPECT_EQ(none.global_front_size, 0u);
}

TEST(SweepSession, VerifySerialHoldsOnSmokeSpace) {
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 2;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  std::ostringstream err;
  EXPECT_TRUE(session.verify_serial(out, err));
  EXPECT_EQ(err.str(), "");
}

TEST(SweepSession, StatsWriterReportsEvalAndStoreAccounting) {
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  const std::string json = session.stats_writer(out).to_json();
  EXPECT_NE(json.find("\"stat\": \"eval_points\", \"value\": 8"),
            std::string::npos);
  EXPECT_NE(json.find("\"stat\": \"fresh_evaluations\", \"value\": 8"),
            std::string::npos);
  EXPECT_NE(json.find("\"stat\": \"store_hits\", \"value\": 0"),
            std::string::npos);
}

}  // namespace
}  // namespace apsq::dse
