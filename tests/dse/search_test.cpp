// The budgeted-search contract: SearchDriver is deterministic given
// (seed, budget) at any thread count, respects the evaluation budget,
// and — with an unconstraining budget — the halving strategy reproduces
// the exhaustive pipeline's front byte-identically. The sweep layer's
// search mode persists sparse row sets through the store so a warm
// replay never runs the driver.
#include "dse/search.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dse/report.hpp"
#include "dse/store.hpp"
#include "dse/sweep.hpp"

namespace apsq::dse {
namespace {

std::string rows_csv(const std::map<index_t, EvalResult>& rows) {
  std::vector<EvalResult> rs;
  rs.reserve(rows.size());
  for (const auto& [i, r] : rows) rs.push_back(r);
  return results_csv(rs).to_string();
}

TEST(Search, ParseStrategyRoundTripsAndRejects) {
  EXPECT_EQ(parse_strategy("halving"), SearchStrategy::kHalving);
  EXPECT_EQ(parse_strategy("evolve"), SearchStrategy::kEvolve);
  EXPECT_EQ(to_string(SearchStrategy::kHalving), std::string("halving"));
  EXPECT_EQ(to_string(SearchStrategy::kEvolve), std::string("evolve"));
  try {
    parse_strategy("anneal");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("anneal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("halving|evolve"), std::string::npos) << msg;
  }
}

TEST(Search, DriverRejectsMismatchedBackendAndBudget) {
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator analytic;  // default backend: analytic
  SearchOptions opt;
  opt.strategy = SearchStrategy::kEvolve;
  opt.budget = 0;  // a search that may evaluate nothing is a config bug
  EXPECT_THROW(SearchDriver(space, analytic, opt), std::logic_error);
  opt.budget = 4;
  opt.strategy = SearchStrategy::kHalving;  // halving IS the mixed pipeline
  EXPECT_THROW(SearchDriver(space, analytic, opt), std::logic_error);
  EvaluatorOptions mixed_opt;
  mixed_opt.backend = EvalBackend::kMixed;
  Evaluator mixed(mixed_opt);
  opt.strategy = SearchStrategy::kEvolve;  // evolve scores at ONE fidelity
  EXPECT_THROW(SearchDriver(space, mixed, opt), std::logic_error);
}

TEST(Search, EvolveIsDeterministicAcrossThreadCounts) {
  const ConfigSpace space = ConfigSpace::paper_default();
  SearchOptions opt;
  opt.strategy = SearchStrategy::kEvolve;
  opt.budget = 64;
  opt.seed = 5;
  std::string base;
  for (int threads : {1, 2, 4}) {
    EvaluatorOptions eopt;
    eopt.threads = threads;
    Evaluator eval(eopt);
    SearchDriver driver(space, eval, opt);
    const std::string csv = rows_csv(driver.run());
    if (threads == 1)
      base = csv;
    else
      EXPECT_EQ(base, csv) << "threads=" << threads;
  }
  EXPECT_FALSE(base.empty());
}

TEST(Search, EvolveRespectsTheBudgetAndReportsIt) {
  const ConfigSpace space = ConfigSpace::paper_default();
  SearchOptions opt;
  opt.strategy = SearchStrategy::kEvolve;
  opt.budget = 48;
  Evaluator eval;
  SearchDriver driver(space, eval, opt);
  const auto rows = driver.run();
  // Evolve scores at one fidelity, so every row is budget-charged: the
  // archive can never outgrow the budget.
  EXPECT_LE(static_cast<i64>(rows.size()), opt.budget);
  EXPECT_EQ(driver.stats().evaluated, static_cast<index_t>(rows.size()));
  EXPECT_LE(driver.stats().evaluated, opt.budget);
  EXPECT_GT(driver.stats().rounds.size(), 0u);
  // Every returned row decodes back to the point it claims to be.
  for (const auto& [i, r] : rows)
    EXPECT_EQ(canonical_key(r.point), canonical_key(space.at(i)));
}

TEST(Search, ChangingTheSeedChangesTheTrajectory) {
  const ConfigSpace space = ConfigSpace::paper_default();
  SearchOptions opt;
  opt.strategy = SearchStrategy::kEvolve;
  opt.budget = 48;
  opt.seed = 1;
  Evaluator e1;
  SearchDriver d1(space, e1, opt);
  const auto r1 = d1.run();
  opt.seed = 99;
  Evaluator e2;
  SearchDriver d2(space, e2, opt);
  const auto r2 = d2.run();
  // Different seeds sample different points (the archives may overlap,
  // but not coincide on a 1248-point space with 48 evaluations).
  EXPECT_NE(rows_csv(r1), rows_csv(r2));
}

TEST(Search, HalvingMatchesExhaustiveCalibratedSimFrontOnSmokeSpace) {
  // The acceptance shape at smoke scale: a budgeted halving search over
  // the mixed backend lands on the same front as exhaustively scoring
  // every point with the calibrated simulator.
  SweepConfig exhaustive;
  exhaustive.space = "smoke";
  exhaustive.backend = EvalBackend::kSim;
  exhaustive.calibrate = true;
  exhaustive.threads = 1;
  SweepSession ex_session(exhaustive);
  const SweepOutcome ex_out = ex_session.run();

  SweepConfig search;
  search.space = "smoke";
  search.backend = EvalBackend::kMixed;
  search.mode = RunMode::kSearch;
  search.budget = 8;
  search.budget_set = true;
  search.threads = 1;
  SweepSession se_session(search);
  const SweepOutcome se_out = se_session.run();

  EXPECT_EQ(results_csv(se_out.front).to_string(),
            results_csv(ex_out.front).to_string());
  EXPECT_LE(se_out.search.evaluated, search.budget);
  EXPECT_GT(se_out.search.rounds.size(), 0u);
}

TEST(Search, WarmStoreReplayAnswersWithoutRunningTheDriver) {
  EvalStore store;
  SweepConfig cfg;
  cfg.space = "paper";
  cfg.mode = RunMode::kSearch;
  cfg.budget = 32;
  cfg.budget_set = true;
  cfg.search_seed = 3;
  cfg.search_seed_set = true;
  cfg.threads = 1;

  SweepSession cold(cfg, &store);
  const SweepOutcome cold_out = cold.run();
  EXPECT_GT(cold_out.fresh_evaluations, 0);
  EXPECT_EQ(cold_out.store_hits, 0);

  SweepSession warm(cfg, &store);
  const SweepOutcome warm_out = warm.run();
  EXPECT_EQ(warm_out.fresh_evaluations, 0);
  EXPECT_EQ(warm_out.store_hits,
            static_cast<index_t>(warm_out.results.size()));
  EXPECT_EQ(warm_out.results.size(), cold_out.results.size());
  EXPECT_EQ(results_csv(warm_out.front).to_string(),
            results_csv(cold_out.front).to_string());

  // A different search seed is a different answer set: it must not be
  // satisfied by the stored one.
  SweepConfig other = cfg;
  other.search_seed = 4;
  SweepSession reseeded(other, &store);
  EXPECT_GT(reseeded.run().fresh_evaluations, 0);
}

TEST(Search, FineSpaceSearchStaysSparse) {
  SweepConfig cfg;
  cfg.space = "fine";
  cfg.mode = RunMode::kSearch;
  cfg.budget = 96;
  cfg.budget_set = true;
  cfg.threads = 1;
  SweepSession session(cfg);
  EXPECT_GE(session.space().size(), index_t{1000000});
  const SweepOutcome out = session.run();
  // A budgeted search touches budget-many points of the million-point
  // space, never a dense vector of it.
  EXPECT_LE(static_cast<i64>(out.results.size()), cfg.budget);
  EXPECT_EQ(out.search.evaluated,
            static_cast<index_t>(out.results.size()));
  EXPECT_GT(out.front.size(), 0u);
}

TEST(SearchSlow, HalvingBudgetQuarterRecoversAdaptiveFrontOnPaperSpace) {
  // The PR's acceptance criterion: a halving search spending at most 25%
  // of the 1248-point space's evaluations on the simulator recovers the
  // exhaustive adaptive mixed sweep's front byte-identically (which the
  // MixedSweep slow suite pins to the pure calibrated-sim front).
  SweepConfig adaptive;
  adaptive.backend = EvalBackend::kMixed;
  adaptive.promote_adaptive = true;
  SweepSession ad_session(adaptive);
  const SweepOutcome ad_out = ad_session.run();

  SweepConfig search;
  search.backend = EvalBackend::kMixed;
  search.mode = RunMode::kSearch;
  search.budget = 312;  // 25% of 1248
  search.budget_set = true;
  SweepSession se_session(search);
  const SweepOutcome se_out = se_session.run();

  EXPECT_EQ(results_csv(se_out.front).to_string(),
            results_csv(ad_out.front).to_string());
  EXPECT_LE(se_out.search.evaluated, 312);
}

}  // namespace
}  // namespace apsq::dse
