#include "dse/config_space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace apsq::dse {
namespace {

TEST(ConfigSpace, SizeIsAxisProduct) {
  const ConfigSpace s = ConfigSpace::smoke();
  EXPECT_EQ(s.size(), static_cast<index_t>(s.workloads.size() *
                                           s.dataflows.size() *
                                           s.psum_configs.size() *
                                           s.geometries.size() *
                                           s.buffers.size()));
}

TEST(ConfigSpace, EnumerationIsExhaustiveAndDuplicateFree) {
  const ConfigSpace s = ConfigSpace::smoke();
  std::set<std::string> keys;
  for (index_t i = 0; i < s.size(); ++i) {
    const DesignPoint p = s.at(i);
    p.validate();
    keys.insert(canonical_key(p));
  }
  EXPECT_EQ(static_cast<index_t>(keys.size()), s.size());
}

TEST(ConfigSpace, AtIsDeterministic) {
  const ConfigSpace s = ConfigSpace::paper_default();
  for (index_t i : {index_t{0}, s.size() / 2, s.size() - 1})
    EXPECT_EQ(canonical_key(s.at(i)), canonical_key(s.at(i)));
}

TEST(ConfigSpace, PaperDefaultCoversTheAcceptanceSweep) {
  const ConfigSpace s = ConfigSpace::paper_default();
  EXPECT_GE(s.size(), 500);  // ≥500-point sweep
  EXPECT_EQ(s.workloads.size(), 4u);
  std::set<std::string> wl;
  std::set<Dataflow> df;
  std::set<int> bits;
  bool has_psq = false, has_apsq = false, has_baseline = false;
  for (index_t i = 0; i < s.size(); ++i) {
    const DesignPoint p = s.at(i);
    wl.insert(p.workload);
    df.insert(p.dataflow);
    bits.insert(p.psum.psum_bits);
    if (p.psum.apsq) has_apsq = true;
    if (!p.psum.apsq && p.psum.psum_bits < 32) has_psq = true;
    if (!p.psum.apsq && p.psum.psum_bits == 32) has_baseline = true;
  }
  EXPECT_EQ(wl.size(), 4u);
  EXPECT_EQ(df.size(), 3u);
  EXPECT_TRUE(bits.count(4) && bits.count(8) && bits.count(16));
  EXPECT_TRUE(has_apsq && has_psq && has_baseline);
}

TEST(ConfigSpace, DefaultPsumAxisHasGroupSizesOneToFour) {
  std::set<index_t> gs;
  for (const PsumConfig& pc : ConfigSpace::default_psum_axis())
    if (pc.apsq) gs.insert(pc.group_size);
  EXPECT_EQ(gs, (std::set<index_t>{1, 2, 3, 4}));
}

TEST(ConfigSpace, OutOfRangeIndexThrows) {
  const ConfigSpace s = ConfigSpace::smoke();
  EXPECT_THROW(s.at(-1), std::logic_error);
  EXPECT_THROW(s.at(s.size()), std::logic_error);
}

TEST(ConfigSpace, EmptyAxisFailsValidation) {
  ConfigSpace s = ConfigSpace::smoke();
  s.dataflows.clear();
  EXPECT_THROW(s.validate(), std::logic_error);
}

}  // namespace
}  // namespace apsq::dse
