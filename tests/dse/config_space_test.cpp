#include "dse/config_space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace apsq::dse {
namespace {

TEST(ConfigSpace, SizeIsAxisProduct) {
  const ConfigSpace s = ConfigSpace::smoke();
  EXPECT_EQ(s.size(), static_cast<index_t>(s.workloads.size() *
                                           s.dataflows.size() *
                                           s.psum_configs.size() *
                                           s.geometries.size() *
                                           s.buffers.size()));
}

TEST(ConfigSpace, EnumerationIsExhaustiveAndDuplicateFree) {
  const ConfigSpace s = ConfigSpace::smoke();
  std::set<std::string> keys;
  for (index_t i = 0; i < s.size(); ++i) {
    const DesignPoint p = s.at(i);
    p.validate();
    keys.insert(canonical_key(p));
  }
  EXPECT_EQ(static_cast<index_t>(keys.size()), s.size());
}

TEST(ConfigSpace, AtIsDeterministic) {
  const ConfigSpace s = ConfigSpace::paper_default();
  for (index_t i : {index_t{0}, s.size() / 2, s.size() - 1})
    EXPECT_EQ(canonical_key(s.at(i)), canonical_key(s.at(i)));
}

TEST(ConfigSpace, PaperDefaultCoversTheAcceptanceSweep) {
  const ConfigSpace s = ConfigSpace::paper_default();
  EXPECT_GE(s.size(), 500);  // ≥500-point sweep
  EXPECT_EQ(s.workloads.size(), 4u);
  std::set<std::string> wl;
  std::set<Dataflow> df;
  std::set<int> bits;
  bool has_psq = false, has_apsq = false, has_baseline = false;
  for (index_t i = 0; i < s.size(); ++i) {
    const DesignPoint p = s.at(i);
    wl.insert(p.workload);
    df.insert(p.dataflow);
    bits.insert(p.psum.psum_bits);
    if (p.psum.apsq) has_apsq = true;
    if (!p.psum.apsq && p.psum.psum_bits < 32) has_psq = true;
    if (!p.psum.apsq && p.psum.psum_bits == 32) has_baseline = true;
  }
  EXPECT_EQ(wl.size(), 4u);
  EXPECT_EQ(df.size(), 3u);
  EXPECT_TRUE(bits.count(4) && bits.count(8) && bits.count(16));
  EXPECT_TRUE(has_apsq && has_psq && has_baseline);
}

TEST(ConfigSpace, DefaultPsumAxisHasGroupSizesOneToFour) {
  std::set<index_t> gs;
  for (const PsumConfig& pc : ConfigSpace::default_psum_axis())
    if (pc.apsq) gs.insert(pc.group_size);
  EXPECT_EQ(gs, (std::set<index_t>{1, 2, 3, 4}));
}

TEST(ConfigSpace, OutOfRangeIndexThrows) {
  const ConfigSpace s = ConfigSpace::smoke();
  EXPECT_THROW(s.at(-1), std::logic_error);
  EXPECT_THROW(s.at(s.size()), std::logic_error);
}

TEST(ConfigSpace, EmptyAxisFailsValidation) {
  ConfigSpace s = ConfigSpace::smoke();
  s.dataflows.clear();
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ConfigSpace, FineDefaultIsMillionPointScale) {
  const ConfigSpace s = ConfigSpace::fine_default();
  s.validate();
  EXPECT_GE(s.size(), index_t{1000000});
  // The fine axes override what the coarse axes set: decode a point and
  // check the fine fields took effect.
  const DesignPoint p = s.at(s.size() - 1);
  p.validate();
  EXPECT_EQ(p.acc.ifmap_buf_bytes, s.ifmap_bytes_axis.back());
  EXPECT_EQ(p.acc.ofmap_buf_bytes, s.ofmap_bytes_axis.back());
  EXPECT_EQ(p.acc.weight_buf_bytes, s.weight_bytes_axis.back());
  EXPECT_EQ(p.acc.act_bits, s.act_bits_axis.back());
  EXPECT_EQ(p.acc.weight_bits, s.weight_bits_axis.back());
}

TEST(ConfigSpace, IndexArithmeticSurvivesBeyond32Bits) {
  // A space bigger than 2^32 points: mixed-radix decode must run in
  // 64-bit throughout — with any 32-bit truncation, indices that agree
  // modulo 2^32 would decode to the same point.
  ConfigSpace s = ConfigSpace::fine_default();
  for (int rep = 0; s.size() <= (index_t{1} << 32); ++rep)
    s.ifmap_bytes_axis.push_back(s.ifmap_bytes_axis.back() + 1024 * (rep + 1));
  ASSERT_GT(s.size(), index_t{1} << 32);
  const index_t lo = 12345;
  const index_t hi = lo + (index_t{1} << 32);
  EXPECT_NE(canonical_key(s.at(lo)), canonical_key(s.at(hi)));
  EXPECT_EQ(canonical_key(s.at(hi)), canonical_key(s.at(hi)));
}

TEST(ConfigSpace, SizeOverflowErrorsRatherThanWraps) {
  // Grow the axes until the point count exceeds 2^63: size() must refuse
  // with a logic error, never silently wrap to a small or negative count.
  ConfigSpace s = ConfigSpace::fine_default();
  const auto extend = [](std::vector<i64>& axis, size_t to) {
    while (axis.size() < to) axis.push_back(axis.back() + 1024);
  };
  extend(s.ifmap_bytes_axis, 10000);
  extend(s.ofmap_bytes_axis, 10000);
  extend(s.weight_bytes_axis, 10000);
  while (s.act_bits_axis.size() < 300)
    s.act_bits_axis.push_back(s.act_bits_axis.back() + 1);
  EXPECT_THROW(s.size(), std::logic_error);
}

}  // namespace
}  // namespace apsq::dse
