// The calibration chain's contract: on *unscaled* anchor regimes —
// shrink = 1, the cross-validation regimes of sim_vs_analytic_test — a
// calibrated sim energy must land on the analytic backend's number, and
// on scaled sweeps the calibrated score must be reported in the analytic
// backend's absolute units (same order of magnitude, same headline
// ordering), not the scaled proxy's.
#include "dse/calibrate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "dse/evaluator.hpp"
#include "energy/energy_model.hpp"
#include "sim/performance.hpp"

namespace apsq::dse {
namespace {

constexpr i64 kBig = i64{1} << 24;

/// The anchor-regime geometry of tests/sim/sim_vs_analytic_test.cpp.
DesignPoint anchor_point(Dataflow df, PsumConfig psum,
                         const std::string& workload) {
  DesignPoint p;
  p.workload = workload;
  p.dataflow = df;
  p.psum = psum;
  p.acc.po = 4;
  p.acc.pci = 4;
  p.acc.pco = 4;
  p.acc.ifmap_buf_bytes = kBig;
  p.acc.ofmap_buf_bytes = kBig;
  p.acc.weight_buf_bytes = kBig;
  return p;
}

Workload one_layer(const std::string& name, index_t m, index_t k, index_t n) {
  Workload w;
  w.name = name;
  w.layers.push_back({"layer", m, k, n, 1});
  return w;
}

Calibrator::Options unscaled_options() {
  Calibrator::Options opt;
  opt.sim.shrink = 1;
  opt.sim.max_dim = kBig;
  return opt;
}

TEST(Calibrator, UnscaledAnchorRegimesMatchAnalyticWithinFivePercent) {
  struct Regime {
    Dataflow df;
    index_t m, k, n;
    PsumConfig psum;
    const char* label;
  };
  const Regime regimes[] = {
      {Dataflow::kWS, 16, 32, 16, PsumConfig::baseline_int32(), "ws_resident"},
      {Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_int8(3), "ws_apsq_gs3"},
      {Dataflow::kWS, 16, 48, 8, PsumConfig::apsq_bits(12, 2), "ws_apsq_int12"},
      {Dataflow::kIS, 12, 40, 12, PsumConfig::apsq_int8(2), "is_apsq_gs2"},
      {Dataflow::kOS, 13, 26, 9, PsumConfig::baseline_int32(), "os_ragged"},
  };
  for (const Regime& r : regimes) {
    const Workload w = one_layer(r.label, r.m, r.k, r.n);
    const DesignPoint p = anchor_point(r.df, r.psum, r.label);
    Calibrator cal(unscaled_options());

    WorkloadRunOptions run_opt = cal.options().sim;
    const WorkloadRunResult run = run_workload(w, sim_config_for(p), run_opt);
    const CalibrationFactors f = cal.factors_for(r.label, w, p);

    const double analytic_e =
        workload_energy(r.df, w, p.acc, sim_config_for(p).psum).total_pj();
    const double analytic_l =
        workload_performance(r.df, w, p.acc, sim_config_for(p).psum)
            .total_latency_s;
    ASSERT_GT(analytic_e, 0.0) << r.label;
    EXPECT_NEAR(cal.calibrated_energy_pj(run, f) / analytic_e, 1.0, 0.05)
        << r.label;
    EXPECT_NEAR(cal.calibrated_latency_s(run, f) / analytic_l, 1.0, 0.05)
        << r.label;
  }
}

TEST(Calibrator, ScaleFactorsAreIdentityAtShrinkOne) {
  const Workload w = one_layer("id", 16, 32, 16);
  const DesignPoint p =
      anchor_point(Dataflow::kWS, PsumConfig::baseline_int32(), "id");
  Calibrator cal(unscaled_options());
  const CalibrationFactors f = cal.scale_factors(w, p);
  EXPECT_DOUBLE_EQ(f.sram_bytes, 1.0);
  EXPECT_DOUBLE_EQ(f.dram_bytes, 1.0);
  EXPECT_DOUBLE_EQ(f.cycles, 1.0);
  EXPECT_DOUBLE_EQ(f.macs, 1.0);
}

TEST(Calibrator, ScaleFactorsCarryScaledRunsUpToFullDimensions) {
  // At shrink 4 on a uniform layer the MAC ratio is 4³; traffic ratios
  // depend on the regime but must scale the measurement *up*.
  Calibrator::Options opt;
  opt.sim.shrink = 4;
  opt.sim.max_dim = kBig;
  Calibrator cal(opt);
  const Workload w = one_layer("up", 64, 64, 64);
  const DesignPoint p =
      anchor_point(Dataflow::kWS, PsumConfig::baseline_int32(), "up");
  const CalibrationFactors f = cal.scale_factors(w, p);
  EXPECT_DOUBLE_EQ(f.macs, 64.0);  // (64/16)³... = 4³
  EXPECT_GT(f.sram_bytes, 1.0);
  EXPECT_GT(f.dram_bytes, 1.0);
  EXPECT_GT(f.cycles, 1.0);
}

TEST(Calibrator, UnitFactorsAreMemoizedPerFamily) {
  const Workload w = one_layer("memo", 16, 32, 16);
  const DesignPoint p =
      anchor_point(Dataflow::kWS, PsumConfig::apsq_int8(2), "memo");
  Calibrator cal(unscaled_options());
  EXPECT_EQ(cal.family_count(), 0);
  const CalibrationFactors a = cal.unit_factors("memo", w, sim_config_for(p));
  EXPECT_EQ(cal.family_count(), 1);
  const CalibrationFactors b = cal.unit_factors("memo", w, sim_config_for(p));
  EXPECT_EQ(cal.family_count(), 1);  // second call: memo hit, no refit
  EXPECT_EQ(a.sram_bytes, b.sram_bytes);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.macs, b.macs);
}

TEST(Calibrator, UnitFactorsCsvRoundTrips) {
  const std::string path = "/tmp/apsq_calibration_roundtrip.csv";
  const Workload w = one_layer("rt", 16, 48, 8);
  Calibrator::Options opt = unscaled_options();

  Calibrator fitted(opt);
  for (const PsumConfig& psum :
       {PsumConfig::baseline_int32(), PsumConfig::apsq_int8(2),
        PsumConfig::apsq_bits(12, 2)}) {
    const DesignPoint p = anchor_point(Dataflow::kWS, psum, "rt");
    fitted.unit_factors("rt", w, sim_config_for(p));
  }
  ASSERT_EQ(fitted.family_count(), 3);
  ASSERT_TRUE(fitted.unit_factors_csv().write(path));

  Calibrator loaded(opt);
  EXPECT_EQ(loaded.load_unit_factors_csv(path), 3);
  EXPECT_EQ(loaded.family_count(), 3);
  // Loaded factors short-circuit the anchor fit and agree exactly.
  EXPECT_EQ(loaded.unit_factors_csv().to_string(),
            fitted.unit_factors_csv().to_string());
  std::remove(path.c_str());
}

TEST(Calibrator, LoadRejectsMismatchedFitContext) {
  // Unit factors depend on the anchor shapes (the sweep's scaling) and
  // the operand seed; a CSV fitted under different options must refuse to
  // load instead of silently degrading the calibration.
  const std::string path = "/tmp/apsq_calibration_ctx.csv";
  const Workload w = one_layer("ctx", 16, 32, 16);
  Calibrator::Options fit_opt = unscaled_options();
  Calibrator fitted(fit_opt);
  fitted.unit_factors(
      "ctx", w,
      sim_config_for(anchor_point(Dataflow::kWS, PsumConfig::baseline_int32(),
                                  "ctx")));
  ASSERT_TRUE(fitted.unit_factors_csv().write(path));

  Calibrator::Options other = fit_opt;
  other.sim.shrink = 2;
  EXPECT_THROW(Calibrator(other).load_unit_factors_csv(path),
               std::logic_error);
  Calibrator::Options reseeded = fit_opt;
  reseeded.sim.seed = fit_opt.sim.seed + 1;
  EXPECT_THROW(Calibrator(reseeded).load_unit_factors_csv(path),
               std::logic_error);
  EXPECT_EQ(Calibrator(fit_opt).load_unit_factors_csv(path), 1);
  std::remove(path.c_str());
}

TEST(Calibrator, LoadRejectsMalformedCsv) {
  const std::string path = "/tmp/apsq_calibration_bad.csv";
  CsvWriter bad({"not", "the", "header"});
  ASSERT_TRUE(bad.write(path));
  Calibrator cal(unscaled_options());
  EXPECT_THROW(cal.load_unit_factors_csv(path), std::logic_error);
  EXPECT_THROW(cal.load_unit_factors_csv("/nonexistent_zz/c.csv"),
               std::logic_error);
  std::remove(path.c_str());
}

TEST(Evaluator, CalibratedSimReportsAnalyticAbsoluteUnits) {
  // The acceptance property behind `apsq_dse --backend sim --calibrate`:
  // calibrated sim energies/latencies of the bundled workloads land within
  // 5% of the analytic backend — same absolute units — while the
  // uncalibrated sim backend reports the (far smaller) scaled proxy.
  EvaluatorOptions sim_opt;
  sim_opt.backend = EvalBackend::kSim;
  sim_opt.sim.shrink = 32;
  sim_opt.sim.max_dim = 32;
  EvaluatorOptions cal_opt = sim_opt;
  cal_opt.calibrate = true;

  Evaluator analytic;
  Evaluator raw(sim_opt);
  Evaluator calibrated(cal_opt);
  ASSERT_EQ(raw.calibrator(), nullptr);
  ASSERT_NE(calibrated.calibrator(), nullptr);

  for (const PsumConfig& psum :
       {PsumConfig::baseline_int32(), PsumConfig::apsq_int8(2)}) {
    DesignPoint p;
    p.workload = "bert";
    p.dataflow = Dataflow::kWS;
    p.psum = psum;
    const EvalResult a = analytic.evaluate(p);
    const EvalResult r = raw.evaluate(p);
    const EvalResult c = calibrated.evaluate(p);
    EXPECT_NEAR(c.obj.energy_pj / a.obj.energy_pj, 1.0, 0.05);
    EXPECT_NEAR(c.obj.latency_s / a.obj.latency_s, 1.0, 0.05);
    EXPECT_LT(r.obj.energy_pj, 0.01 * a.obj.energy_pj);  // scaled proxy
    // Calibration rescales energy/latency only.
    EXPECT_EQ(c.obj.area_um2, a.obj.area_um2);
    EXPECT_EQ(c.obj.error, a.obj.error);
  }
  // The paper's headline survives calibration.
  DesignPoint base, apsq8;
  base.workload = apsq8.workload = "bert";
  base.psum = PsumConfig::baseline_int32();
  apsq8.psum = PsumConfig::apsq_int8(2);
  EXPECT_LT(calibrated.evaluate(apsq8).obj.energy_pj,
            calibrated.evaluate(base).obj.energy_pj);
}

TEST(Calibrator, CalibratedTelemetryRollUpMatchesCalibratedLatency) {
  // The telemetry registry's sim+cal rows use the exact per-component
  // expressions of calibrated_latency_s, so the roll-up must land on the
  // same double bit-for-bit — the contract that lets --layer-stats-csv
  // decompose a calibrated score without re-deriving it differently.
  Calibrator::Options opt;
  opt.sim.shrink = 4;
  opt.sim.max_dim = 32;
  Calibrator cal(opt);

  const Workload w = one_layer("roll", 128, 128, 128);
  const DesignPoint p = anchor_point(Dataflow::kWS,
                                     PsumConfig::baseline_int32(), "roll");
  const SimConfig cfg = sim_config_for(p);
  const WorkloadRunResult r = run_workload(w, cfg, opt.sim);
  const CalibrationFactors f = cal.factors_for("roll", w, p);

  const WorkloadTelemetry t =
      sim_telemetry(r, cfg, opt.perf, f, "sim+cal");
  EXPECT_EQ(t.source, "sim+cal");
  EXPECT_EQ(t.roll_up().total_latency_s, cal.calibrated_latency_s(r, f));
  // Integer counters stay the measured values even under calibration.
  EXPECT_EQ(t.roll_up().total_cycles, r.total.cycles);
  EXPECT_EQ(t.roll_up().total_macs, r.total.mac_ops);
}

TEST(Calibrator, ClassFactorsMatchPerWorkloadOnSingleClassLatency) {
  // A workload with one layer class gives the per-class path nothing to
  // split: its latency must equal the per-workload path exactly (the
  // latency roll-up is per-layer in both).
  Calibrator::Options opt;
  opt.sim.shrink = 4;
  opt.sim.max_dim = 32;
  Calibrator cal(opt);

  Workload w;
  w.name = "single";
  w.layers.push_back({"proj", 64, 64, 64, 2});
  w.layers.push_back({"proj", 96, 64, 48, 1});
  const DesignPoint p = anchor_point(Dataflow::kWS,
                                     PsumConfig::baseline_int32(), "single");
  const WorkloadRunResult r = run_workload(w, sim_config_for(p), opt.sim);

  const CalibrationFactors f = cal.factors_for("single", w, p);
  const ClassFactors cf = cal.class_factors_for("single", w, p);
  ASSERT_EQ(cf.by_class.size(), 1u);
  EXPECT_EQ(cal.calibrated_latency_s(r, cf.for_class("proj")),
            cal.calibrated_latency_s(r, f));
}

TEST(Calibrator, PerClassCalibrationBeatsPerWorkloadOnMixedRegimes) {
  // Two layer classes in *different boundness regimes* defeat the single
  // blended per-workload factor vector: when every layer is bound on the
  // same component the blend is exact in aggregate, so the test pairs a
  // compute-bound big GEMM with a wide-input thin layer whose arithmetic
  // intensity is low enough to be DRAM-bound on an 8×8×8 array. The
  // blended cycles/dram factors are then wrong for both; the per-class
  // fit must land closer to the analytic full-scale latency.
  Calibrator::Options opt;
  opt.sim.shrink = 4;
  opt.sim.max_dim = 32;
  Calibrator cal(opt);

  Workload w;
  w.name = "mix";
  w.layers.push_back({"gemm_big", 256, 256, 256, 1});
  w.layers.push_back({"wide_in", 8, 4096, 8, 1});
  DesignPoint p = anchor_point(Dataflow::kWS, PsumConfig::baseline_int32(),
                               "mix");
  // An 8×8×8 array puts the arithmetic-intensity break-even between the
  // two shapes: 256³ is compute-bound, 8×4096×8 is DRAM-bound.
  p.acc.po = 8;
  p.acc.pci = 8;
  p.acc.pco = 8;

  const SimConfig cfg = sim_config_for(p);
  const WorkloadRunResult r = run_workload(w, cfg, opt.sim);
  const double analytic =
      workload_performance(p.dataflow, w, p.acc, cfg.psum, opt.perf)
          .total_latency_s;
  ASSERT_GT(analytic, 0.0);

  const CalibrationFactors f = cal.factors_for("mix", w, p);
  const ClassFactors cf = cal.class_factors_for("mix", w, p);
  ASSERT_EQ(cf.by_class.size(), 2u);
  const double wl_err =
      std::abs(cal.calibrated_latency_s(r, f) / analytic - 1.0);
  const double class_err =
      std::abs(cal.calibrated_latency_s(r, cf) / analytic - 1.0);
  EXPECT_LT(class_err, wl_err);
  // And the finer fit is not merely relatively better — it is close.
  EXPECT_NEAR(cal.calibrated_latency_s(r, cf) / analytic, 1.0, 0.10);
}

}  // namespace
}  // namespace apsq::dse
