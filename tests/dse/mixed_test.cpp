// Mixed-fidelity (analytic prefilter → calibrated-sim promotion) sweep
// tests: provenance, front containment, degeneration to the pure
// calibrated-sim sweep at band = ∞, byte-identical determinism across
// thread counts, and the promotion-fraction budget on the paper space.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"

namespace apsq::dse {
namespace {

EvaluatorOptions mixed_opt(int threads, double band) {
  EvaluatorOptions opt;
  opt.threads = threads;
  opt.backend = EvalBackend::kMixed;
  opt.promote_band = band;
  opt.sim.shrink = 32;
  opt.sim.max_dim = 32;
  return opt;
}

EvaluatorOptions pure_sim_opt(int threads) {
  EvaluatorOptions opt = mixed_opt(threads, 0.0);
  opt.backend = EvalBackend::kSim;
  opt.calibrate = true;  // mixed phase 2 is always calibrated
  return opt;
}

std::set<std::string> keys_of(const std::vector<EvalResult>& pts) {
  std::set<std::string> keys;
  for (const auto& p : pts) keys.insert(canonical_key(p.point));
  return keys;
}

TEST(MixedSweep, ProvenancePartitionsTheResults) {
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator eval(mixed_opt(1, 0.0));  // band 0: promote the front only
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  ASSERT_EQ(static_cast<index_t>(results.size()), space.size());

  index_t analytic = 0, sim_cal = 0;
  for (const EvalResult& r : results) {
    if (r.scored_by == "analytic")
      ++analytic;
    else if (r.scored_by == "sim+cal")
      ++sim_cal;
    else
      FAIL() << "unexpected provenance '" << r.scored_by << "'";
  }
  const MixedSweepStats& ms = eval.mixed_stats();
  EXPECT_EQ(ms.total, space.size());
  EXPECT_EQ(ms.promoted, sim_cal);
  EXPECT_EQ(ms.band, 0.0);
  EXPECT_EQ(analytic + sim_cal, space.size());
  EXPECT_GT(sim_cal, 0);  // the front itself is always promoted
  EXPECT_EQ(static_cast<size_t>(sim_cal), promoted_subset(results).size());
}

TEST(MixedSweep, FrontIsContainedInThePromotedSet) {
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator eval(mixed_opt(1, 0.05));
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  const std::vector<EvalResult> promoted = promoted_subset(results);
  const std::set<std::string> promoted_keys = keys_of(promoted);

  for (const EvalResult& f : pareto_front_by_workload(promoted))
    EXPECT_TRUE(promoted_keys.count(canonical_key(f.point)));
  // And every promoted point carries uniform sim+cal fidelity, so the
  // front never compares analytic numbers against measured ones.
  for (const EvalResult& p : promoted) EXPECT_EQ(p.scored_by, "sim+cal");
}

TEST(MixedSweep, PromotedScoresMatchThePureCalibratedSimByteExactly) {
  // The acceptance property: wherever the mixed sweep simulated, its
  // objectives must be byte-identical to what a pure --backend sim
  // --calibrate sweep of the same space produces.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator mixed(mixed_opt(1, 0.05));
  const std::vector<EvalResult> mres = mixed.evaluate_space(space);

  Evaluator pure(pure_sim_opt(1));
  const std::vector<EvalResult> sres = pure.evaluate_space(space);
  ASSERT_EQ(mres.size(), sres.size());

  index_t checked = 0;
  for (size_t i = 0; i < mres.size(); ++i) {
    if (mres[i].scored_by != "sim+cal") continue;
    ++checked;
    ASSERT_EQ(canonical_key(mres[i].point), canonical_key(sres[i].point));
    for (int k = 0; k < kObjectiveCount; ++k) {
      const Objective o = static_cast<Objective>(k);
      EXPECT_EQ(format_double(mres[i].obj.get(o)),
                format_double(sres[i].obj.get(o)))
          << to_string(o) << " for " << canonical_key(mres[i].point);
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(MixedSweep, InfiniteBandReproducesThePureSimFront) {
  // band = ∞ promotes every point, so the mixed sweep degenerates to the
  // pure calibrated-sim sweep — same per-point scores, same front, byte
  // for byte.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator mixed(mixed_opt(1, std::numeric_limits<double>::infinity()));
  const std::vector<EvalResult> mres = mixed.evaluate_space(space);
  EXPECT_EQ(mixed.mixed_stats().promoted, space.size());

  Evaluator pure(pure_sim_opt(1));
  const std::vector<EvalResult> sres = pure.evaluate_space(space);

  const std::string mixed_front_csv =
      results_csv(pareto_front_by_workload(promoted_subset(mres))).to_string();
  const std::string sim_front_csv =
      results_csv(pareto_front_by_workload(sres)).to_string();
  EXPECT_EQ(mixed_front_csv, sim_front_csv);
}

TEST(MixedSweep, ParallelEqualsSerialByteIdentical) {
  // Including the scored_by column: the *promotion decisions*, not just
  // the scores, must be schedule-independent.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator serial(mixed_opt(1, 0.05));
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space), "mixed").to_string();
  for (int threads : {2, 4}) {
    Evaluator parallel(mixed_opt(threads, 0.05));
    EXPECT_EQ(serial_csv,
              results_csv(parallel.evaluate_space(space), "mixed").to_string())
        << "threads=" << threads;
    EXPECT_EQ(parallel.mixed_stats().promoted, serial.mixed_stats().promoted);
  }
}

TEST(MixedSweep, NestedLayerParallelismStaysDeterministic) {
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator serial(mixed_opt(1, 0.05));
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space), "mixed").to_string();
  EvaluatorOptions nested = mixed_opt(4, 0.05);
  nested.sim.threads = 4;  // phase-2 layer loops join the shared pool
  Evaluator parallel(nested);
  EXPECT_EQ(serial_csv,
            results_csv(parallel.evaluate_space(space), "mixed").to_string());
}

TEST(MixedSweep, SinglePointEvaluationIsSimFidelity) {
  // A lone point is its own front — always promoted.
  Evaluator eval(mixed_opt(1, 0.05));
  DesignPoint p;
  p.workload = "bert";
  p.psum = PsumConfig::apsq_int8(2);
  const EvalResult r = eval.evaluate(p);
  EXPECT_EQ(r.scored_by, "sim+cal");

  Evaluator pure(pure_sim_opt(1));
  EXPECT_EQ(format_double(r.obj.energy_pj),
            format_double(pure.evaluate(p).obj.energy_pj));
}

TEST(MixedSweep, CalibrationIsRestrictedToPromotedFamilies) {
  // Anchor fitting is lazy, so only families containing a promoted point
  // ever pay for anchor sims.
  const ConfigSpace space = ConfigSpace::smoke();
  Evaluator eval(mixed_opt(1, 0.0));
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  ASSERT_NE(eval.calibrator(), nullptr);

  std::set<std::string> promoted_families;
  for (const EvalResult& r : promoted_subset(results))
    promoted_families.insert(
        Calibrator::family_key(r.point.workload, sim_config_for(r.point)));
  const std::vector<std::string> fitted = eval.calibrator()->family_keys();
  EXPECT_EQ(fitted.size(), promoted_families.size());
  for (const std::string& key : fitted)
    EXPECT_TRUE(promoted_families.count(key)) << key;
  // With band 0 the smoke space leaves some families unpromoted.
  EXPECT_LT(eval.calibrator()->family_count(), space.size());
}

TEST(MixedSweep, AdaptiveStopsWhenTheFrontIsStableAndAccountsEveryRound) {
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions opt = mixed_opt(1, 0.0);
  opt.promote_adaptive = true;
  Evaluator eval(opt);
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  const MixedSweepStats& ms = eval.mixed_stats();
  EXPECT_EQ(ms.mode, PromoteMode::kAdaptive);
  ASSERT_GE(ms.rounds.size(), 1u);

  // Round 0 promotes the analytic front at band 0; each widening
  // multiplies the band by adaptive_growth exactly.
  EXPECT_EQ(ms.rounds[0].band, 0.0);
  if (ms.rounds.size() > 1) {
    EXPECT_EQ(ms.rounds[1].band, opt.adaptive_start);
  }
  for (size_t r = 2; r < ms.rounds.size(); ++r)
    EXPECT_EQ(ms.rounds[r].band,
              ms.rounds[r - 1].band * opt.adaptive_growth);

  // Per-round accounting: cumulative counts are consistent and monotone,
  // and the final total is what the sweep reports (and what the results
  // carry as sim+cal provenance).
  index_t running = 0;
  for (const MixedRoundStats& rs : ms.rounds) {
    running += rs.promoted_new;
    EXPECT_EQ(rs.promoted_total, running);
    EXPECT_GT(rs.front_size, 0);
  }
  EXPECT_EQ(ms.promoted, running);
  EXPECT_EQ(static_cast<size_t>(ms.promoted),
            promoted_subset(results).size());

  // The stopping rule: either the front sat still for adaptive_stability
  // consecutive widenings, or every point was promoted first.
  if (ms.promoted < space.size()) {
    ASSERT_GE(ms.rounds.size(), static_cast<size_t>(opt.adaptive_stability));
    for (size_t r = ms.rounds.size() -
                    static_cast<size_t>(opt.adaptive_stability);
         r < ms.rounds.size(); ++r)
      EXPECT_FALSE(ms.rounds[r].front_changed) << "round " << r;
  } else {
    EXPECT_EQ(ms.rounds.back().promoted_total, space.size());
  }
}

TEST(MixedSweep, AdaptiveParallelEqualsSerialByteIdentical) {
  // The promotion *trajectory* — every round's band and promotion
  // decisions, not just the final scores — must be schedule-independent.
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions sopt = mixed_opt(1, 0.0);
  sopt.promote_adaptive = true;
  Evaluator serial(sopt);
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space), "mixed").to_string();
  const MixedSweepStats& sms = serial.mixed_stats();
  for (int threads : {2, 4}) {
    EvaluatorOptions popt = mixed_opt(threads, 0.0);
    popt.promote_adaptive = true;
    Evaluator parallel(popt);
    EXPECT_EQ(serial_csv,
              results_csv(parallel.evaluate_space(space), "mixed").to_string())
        << "threads=" << threads;
    const MixedSweepStats& pms = parallel.mixed_stats();
    ASSERT_EQ(pms.rounds.size(), sms.rounds.size()) << "threads=" << threads;
    for (size_t r = 0; r < pms.rounds.size(); ++r) {
      EXPECT_EQ(pms.rounds[r].band, sms.rounds[r].band);
      EXPECT_EQ(pms.rounds[r].promoted_new, sms.rounds[r].promoted_new);
      EXPECT_EQ(pms.rounds[r].front_size, sms.rounds[r].front_size);
      EXPECT_EQ(pms.rounds[r].front_changed, sms.rounds[r].front_changed);
    }
  }
}

TEST(MixedSweep, BudgetPromotesExactlyTheBestPointsByMargin) {
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions opt = mixed_opt(1, 0.0);
  opt.promote_budget = 3;
  Evaluator eval(opt);
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  const MixedSweepStats& ms = eval.mixed_stats();
  EXPECT_EQ(ms.mode, PromoteMode::kBudget);
  EXPECT_EQ(ms.budget, 3);
  EXPECT_EQ(ms.promoted, 3);
  ASSERT_EQ(ms.rounds.size(), 1u);
  EXPECT_EQ(ms.rounds[0].promoted_new, 3);

  // The promoted keys are exactly the budget's ranked-margin selection
  // over the analytic phase-1 scores.
  Evaluator analytic(EvaluatorOptions{});
  const std::vector<EvalResult> ares = analytic.evaluate_space(space);
  const std::set<std::string> expected =
      keys_of(best_by_margin(ares, 3, opt.promote_objectives));
  EXPECT_EQ(keys_of(promoted_subset(results)), expected);
  // ... and the reported effective band is the largest selected margin.
  double max_margin = 0.0;
  for (const PromotionMargin& m :
       promotion_margins_by_workload(ares, opt.promote_objectives))
    if (expected.count(canonical_key(m.result.point)))
      max_margin = std::max(max_margin, m.enter_band);
  EXPECT_EQ(ms.band, max_margin);
}

TEST(MixedSweep, BudgetParallelEqualsSerialByteIdentical) {
  // Stable tie-breaking at the budget boundary: the cut must land on the
  // same points for every thread count.
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions sopt = mixed_opt(1, 0.0);
  sopt.promote_budget = 3;
  Evaluator serial(sopt);
  const std::string serial_csv =
      results_csv(serial.evaluate_space(space), "mixed").to_string();
  for (int threads : {2, 4}) {
    EvaluatorOptions popt = mixed_opt(threads, 0.0);
    popt.promote_budget = 3;
    Evaluator parallel(popt);
    EXPECT_EQ(serial_csv,
              results_csv(parallel.evaluate_space(space), "mixed").to_string())
        << "threads=" << threads;
    EXPECT_EQ(parallel.mixed_stats().promoted, serial.mixed_stats().promoted);
  }
}

TEST(MixedSweep, InfiniteBudgetDegeneratesToInfiniteBand) {
  // A budget at or past the space size promotes everything — the same
  // sweep (scores, provenance, stats) as band = ∞, byte for byte.
  const ConfigSpace space = ConfigSpace::smoke();
  EvaluatorOptions bopt = mixed_opt(1, 0.0);
  bopt.promote_budget = space.size() + 1000;
  Evaluator budget(bopt);
  const std::string budget_csv =
      results_csv(budget.evaluate_space(space), "mixed").to_string();
  EXPECT_EQ(budget.mixed_stats().promoted, space.size());

  Evaluator band(mixed_opt(1, std::numeric_limits<double>::infinity()));
  const std::string band_csv =
      results_csv(band.evaluate_space(space), "mixed").to_string();
  EXPECT_EQ(band.mixed_stats().promoted, space.size());
  EXPECT_EQ(budget_csv, band_csv);
}

TEST(MixedSweep, AdaptiveFrontMatchesPureCalibratedSimOnPaperSpace) {
  // The acceptance property of adaptive promotion: on the full 1248-point
  // paper space over the energy×latency plane, the front-stability rule
  // recovers the pure calibrated-sim front byte-identically while
  // simulating no more points than the hand-tuned fixed band 0.05 did.
  const ConfigSpace space = ConfigSpace::paper_default();
  ASSERT_EQ(space.size(), 1248);
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");

  EvaluatorOptions aopt = mixed_opt(4, 0.0);
  aopt.promote_adaptive = true;
  aopt.promote_objectives = el;
  Evaluator adaptive(aopt);
  const std::vector<EvalResult> ares = adaptive.evaluate_space(space);
  const std::string adaptive_front_csv =
      results_csv(pareto_front_by_workload(promoted_subset(ares), el))
          .to_string();

  EvaluatorOptions popt = pure_sim_opt(4);
  popt.promote_objectives = el;
  Evaluator pure(popt);
  const std::string pure_front_csv =
      results_csv(pareto_front_by_workload(pure.evaluate_space(space), el))
          .to_string();
  EXPECT_EQ(adaptive_front_csv, pure_front_csv);

  // Simulation cost: no more than the fixed band would have paid (the
  // band the adaptive rule replaced — 242 points at 0.05 on this space).
  Evaluator analytic(EvaluatorOptions{});
  const std::vector<EvalResult> full = analytic.evaluate_space(space);
  const size_t fixed_band_cost =
      epsilon_band_by_workload(full, 0.05, el).size();
  EXPECT_LE(adaptive.mixed_stats().promoted,
            static_cast<index_t>(fixed_band_cost));
  EXPECT_GT(adaptive.mixed_stats().rounds.size(), 1u);
}

TEST(MixedSweep, PaperSpacePromotionFractionStaysUnderBudget) {
  // The acceptance budget: with --promote-band 0.05 over the
  // energy×latency plane, the mixed sweep re-simulates ≤ 20% of the
  // default 1248-point space. Phase 1 and the promotion decision are
  // pure analytic computations, so this pins the budget without paying
  // for any phase-2 simulation.
  const ConfigSpace space = ConfigSpace::paper_default();
  ASSERT_EQ(space.size(), 1248);
  EvaluatorOptions opt;
  opt.threads = 4;
  Evaluator analytic(opt);
  const std::vector<EvalResult> results = analytic.evaluate_space(space);

  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");
  const std::vector<EvalResult> band =
      epsilon_band_by_workload(results, 0.05, el);
  EXPECT_LE(band.size(), static_cast<size_t>(space.size()) / 5)
      << "promotion band grew past the 20% re-simulation budget";
  // ... while still containing every per-workload front member.
  const std::set<std::string> band_keys = keys_of(band);
  for (const EvalResult& f : pareto_front_by_workload(results, el))
    EXPECT_TRUE(band_keys.count(canonical_key(f.point)));
}

}  // namespace
}  // namespace apsq::dse
