// The evaluated-space store's contract: snapshots round-trip
// byte-stably; a warm reload answers re-slices over any objective subset
// with zero fresh evaluations and a front byte-identical to a fresh
// sweep; and every cold-path failure — corrupt, truncated, wrong-format,
// wrong-version, index-damaged, or space-mismatched snapshots — throws a
// std::runtime_error naming the file and the reason, never crashes, and
// never silently stands in for real results.
#include "dse/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "dse/report.hpp"
#include "dse/sweep.hpp"

namespace apsq::dse {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "apsq_store_test_" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream(path, std::ios::binary) << text;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// EXPECT the load to throw a runtime_error whose message contains both
/// the file path and `reason_fragment` (the "names file and reason"
/// contract), and leave the store empty.
void expect_load_error(const std::string& path,
                       const std::string& reason_fragment) {
  EvalStore store;
  try {
    store.load_file(path);
    FAIL() << "expected load_file(" << path << ") to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(reason_fragment), std::string::npos) << what;
  }
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(ConfigSpaceHash, IdenticalSpacesHashEqualDifferentSpacesDont) {
  EXPECT_EQ(config_space_hash(ConfigSpace::smoke()),
            config_space_hash(ConfigSpace::smoke()));
  EXPECT_NE(config_space_hash(ConfigSpace::smoke()),
            config_space_hash(ConfigSpace::paper_default()));
  ConfigSpace tweaked = ConfigSpace::smoke();
  tweaked.act_bits = 16;
  EXPECT_NE(config_space_hash(tweaked), config_space_hash(ConfigSpace::smoke()));
}

TEST(EvalStore, RoundTripPreservesEveryResultByteExactly) {
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  const std::string hash = config_space_hash(session.space());

  EvalStore store;
  store.put(hash, cfg.scoring_key(), cfg.scored_by_label(), 8, out.results);
  const std::string path = temp_path("roundtrip.json");
  ASSERT_TRUE(store.save_file(path));

  EvalStore reloaded;
  EXPECT_EQ(reloaded.load_file(path), 1u);
  EXPECT_EQ(reloaded.source(), path);
  const std::shared_ptr<const EvalStore::Entry> e =
      reloaded.find(hash, cfg.scoring_key());
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete());
  EXPECT_EQ(e->backend, "analytic");
  std::vector<EvalResult> restored;
  for (const auto& [idx, r] : e->results) restored.push_back(r);
  EXPECT_EQ(results_csv(restored, "analytic").to_string(),
            results_csv(out.results, "analytic").to_string());
  // Serialization is byte-stable: saving the reloaded store reproduces
  // the file.
  EXPECT_EQ(reloaded.to_json(), read_file(path));
  std::remove(path.c_str());
}

TEST(EvalStore, ColdPathRejectsCorruptAndTruncatedSnapshots) {
  const std::string bad = temp_path("corrupt.json");
  write_file(bad, "{\"format\": \"apsq-evalstore\", ");
  expect_load_error(bad, "expected a string key");

  // A truncated tail of a real snapshot: valid prefix, severed mid-array.
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  cfg.store_out = temp_path("whole.json");
  SweepSession(cfg).run();
  const std::string whole = read_file(cfg.store_out);
  // Sever inside a string value so the parse error is deterministic.
  const size_t mid = whole.find("\"workload\": \"");
  ASSERT_NE(mid, std::string::npos);
  write_file(bad, whole.substr(0, mid + 14));
  expect_load_error(bad, "unterminated");

  expect_load_error(temp_path("absent.json"), "cannot open file");
  std::remove(bad.c_str());
  std::remove(cfg.store_out.c_str());
}

TEST(EvalStore, ColdPathRejectsWrongFormatVersionAndDamagedRows) {
  const std::string path = temp_path("damaged.json");
  write_file(path, "[1, 2, 3]");
  expect_load_error(path, "not an evaluated-space snapshot");
  write_file(path, "{\"format\": \"something-else\", \"version\": 1}");
  expect_load_error(path, "not an evaluated-space snapshot");

  // Build one genuine snapshot, then damage it in targeted ways.
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  cfg.store_out = temp_path("genuine.json");
  SweepSession(cfg).run();
  const std::string good = read_file(cfg.store_out);
  std::remove(cfg.store_out.c_str());

  auto replace_first = [&](const std::string& from, const std::string& to) {
    std::string s = good;
    const size_t at = s.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    s.replace(at, from.size(), to);
    return s;
  };

  write_file(path,
             replace_first("\"schema_version\": 1", "\"schema_version\": 99"));
  expect_load_error(path, "unsupported schema_version 99");
  // The pre-daemon spelling ("version") is the same schema: it loads as
  // v1 and rejects future versions with the same message.
  write_file(path, replace_first("\"schema_version\": 1", "\"version\": 99"));
  expect_load_error(path, "unsupported schema_version 99");
  {
    write_file(path, replace_first("\"schema_version\": 1", "\"version\": 1"));
    EvalStore legacy;
    EXPECT_EQ(legacy.load_file(path), 1u);
  }
  write_file(path, replace_first("\"i\": 3", "\"i\": 12"));
  expect_load_error(path, "out of range");
  write_file(path, replace_first("\"i\": 3", "\"i\": 0"));
  expect_load_error(path, "duplicate point index 0");
  write_file(path, replace_first("\"points\": 8", "\"points\": 0"));
  // 8 results against a claimed 0-point space: rejected either as a bad
  // count or as too many results — both name the entry.
  expect_load_error(path, "entry 0");
  write_file(path, replace_first("\"error\": ", "\"error\": 1e999; "));
  expect_load_error(path, "");  // any parse/range error, file named
  std::remove(path.c_str());
}

TEST(EvalStore, SessionRejectsSnapshotsOfADifferentSpace) {
  // Snapshot the smoke space, then ask a paper-space sweep to answer from
  // it: the scoring key matches but the hash doesn't, so --store-in must
  // fail loudly instead of silently re-evaluating.
  SweepConfig cold;
  cold.space = "smoke";
  cold.threads = 1;
  cold.store_out = temp_path("smoke_space.json");
  SweepSession(cold).run();

  SweepConfig warm;
  warm.space = "paper";
  warm.threads = 1;
  warm.store_in = cold.store_out;
  SweepSession session(warm);
  try {
    session.run();
    FAIL() << "expected run() to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(cold.store_out), std::string::npos) << what;
    EXPECT_NE(what.find("no snapshot for space hash"), std::string::npos)
        << what;
  }
  std::remove(cold.store_out.c_str());
}

TEST(EvalStore, SessionRejectsPointCountAndIdentityMismatches) {
  SweepConfig cold;
  cold.space = "smoke";
  cold.threads = 1;
  cold.store_out = temp_path("tampered.json");
  SweepSession(cold).run();
  const std::string good = read_file(cold.store_out);

  auto run_warm = [&]() {
    SweepConfig warm;
    warm.space = "smoke";
    warm.threads = 1;
    warm.store_in = cold.store_out;
    SweepSession session(warm);
    return session.run();
  };

  // Same hash, different recorded size: a corrupted or colliding entry.
  std::string tampered = good;
  const size_t at = tampered.find("\"points\": 8");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 11, "\"points\": 9");
  write_file(cold.store_out, tampered);
  EXPECT_THROW(run_warm(), std::runtime_error);

  // Same hash and size, but a row denotes a different configuration than
  // the space enumerates at its index — the per-row canonical-key guard.
  tampered = good;
  const size_t wl = tampered.find("\"workload\": \"bert\"");
  ASSERT_NE(wl, std::string::npos);
  tampered.replace(wl, 18, "\"workload\": \"zzzz\"");
  write_file(cold.store_out, tampered);
  try {
    run_warm();
    FAIL() << "expected run() to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does not match the space"),
              std::string::npos)
        << e.what();
  }
  std::remove(cold.store_out.c_str());
}

/// Satellite 3 — re-slice equivalence: a front re-sliced from a loaded
/// store over a different ObjectiveSet subset must be byte-identical to a
/// fresh sweep run directly with those objectives, and must pay zero
/// fresh evaluations.
void expect_reslice_equivalence(SweepConfig base, const std::string& tag,
                                const std::string& new_objectives) {
  const std::string path = temp_path("reslice_" + tag + ".json");
  SweepConfig cold = base;
  cold.store_out = path;
  SweepSession(cold).run();

  SweepConfig warm = base;
  warm.store_in = path;
  warm.objectives = ObjectiveSet::parse(new_objectives);
  SweepSession warm_session(warm);
  const SweepOutcome warm_out = warm_session.run();
  EXPECT_EQ(warm_out.fresh_evaluations, 0) << tag;
  EXPECT_EQ(warm_out.store_hits, 8) << tag;

  SweepConfig fresh = base;
  fresh.objectives = warm.objectives;
  SweepSession fresh_session(fresh);
  const SweepOutcome fresh_out = fresh_session.run();
  EXPECT_GT(fresh_out.fresh_evaluations, 0) << tag;

  EXPECT_EQ(
      results_csv(warm_out.front, warm.scored_by_label()).to_string(),
      results_csv(fresh_out.front, fresh.scored_by_label()).to_string())
      << tag;
  std::remove(path.c_str());
}

TEST(EvalStore, ResliceEquivalenceAnalytic) {
  SweepConfig base;
  base.space = "smoke";
  base.threads = 1;
  expect_reslice_equivalence(base, "analytic", "energy,latency");
  expect_reslice_equivalence(base, "analytic_max",
                             "energy,latency,pe_utilization");
}

TEST(EvalStore, ResliceEquivalenceSimCalibrated) {
  SweepConfig base;
  base.space = "smoke";
  base.threads = 1;
  base.backend = EvalBackend::kSim;
  base.calibrate = true;
  base.max_dim = 32;
  expect_reslice_equivalence(base, "simcal", "energy,latency");
}

TEST(EvalStore, ResliceEquivalenceMixedAdaptive) {
  SweepConfig base;
  base.space = "smoke";
  base.threads = 1;
  base.backend = EvalBackend::kMixed;
  base.promote_adaptive = true;
  base.max_dim = 32;
  // Pin the promotion plane: the scoring identity (which points were
  // promoted, and to which values) must not move when the slicing
  // objectives do — that is exactly what keeps a stored mixed sweep
  // re-sliceable.
  base.promote_objectives = ObjectiveSet::core();
  base.promote_objectives_set = true;
  expect_reslice_equivalence(base, "mixed_adaptive", "energy,latency");
}

TEST(EvalStore, PartialSnapshotBatchesOnlyTheMisses) {
  // Evaluate the space, drop half the rows, and reload: the session must
  // answer the surviving rows from the store and evaluate exactly the
  // missing ones, and the merged front must match a fresh sweep's.
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession full(cfg);
  const SweepOutcome full_out = full.run();

  ConfigSpace space = ConfigSpace::smoke();
  const std::string hash = config_space_hash(space);
  EvalStore store;
  std::vector<EvalResult> half(full_out.results.begin(),
                               full_out.results.begin() + 4);
  store.put(hash, cfg.scoring_key(), cfg.scored_by_label(), 8, half);

  SweepSession warm(cfg, &store);
  const SweepOutcome warm_out = warm.run();
  EXPECT_EQ(warm_out.store_hits, 4);
  EXPECT_EQ(warm_out.fresh_evaluations, 4);
  EXPECT_EQ(results_csv(warm_out.front).to_string(),
            results_csv(full_out.front).to_string());
  // The merged sweep was recorded back: the entry is now complete.
  const std::shared_ptr<const EvalStore::Entry> e =
      store.find(hash, cfg.scoring_key());
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete());
}

TEST(EvalStore, SharedStoreAnswersAcrossSessions) {
  // The batch-runner pattern: two sessions over one external store — the
  // second pays nothing.
  EvalStore store;
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession first(cfg, &store);
  EXPECT_EQ(first.run().fresh_evaluations, 8);
  SweepConfig resliced = cfg;
  resliced.objectives = ObjectiveSet::parse("energy,area");
  SweepSession second(resliced, &store);
  const SweepOutcome out = second.run();
  EXPECT_EQ(out.fresh_evaluations, 0);
  EXPECT_EQ(out.store_hits, 8);
}

TEST(EvalStore, LoadIsAllOrNothing) {
  // A multi-entry file whose LATER entry is malformed must load nothing:
  // a half-merged snapshot would silently answer queries for a file that
  // was rejected. (Regression for the staged-commit load path.)
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  const std::string hash = config_space_hash(session.space());

  // Two entries: the real one plus a copy under an all-f hash, which
  // sorts last among 16-digit lowercase-hex keys — so damaging the text
  // after its marker damages the second entry in file order.
  const std::string fake_hash(16, 'f');
  EvalStore two;
  two.put(hash, cfg.scoring_key(), cfg.scored_by_label(), 8, out.results);
  two.put(fake_hash, cfg.scoring_key(), cfg.scored_by_label(), 8, out.results);
  std::string text = two.to_json();
  const size_t marker = text.find("\"space_hash\": \"" + fake_hash + "\"");
  ASSERT_NE(marker, std::string::npos);
  const size_t damage = text.find("\"i\": 3", marker);
  ASSERT_NE(damage, std::string::npos);
  text.replace(damage, 6, "\"i\": 99");

  const std::string path = temp_path("all_or_nothing.json");
  write_file(path, text);

  // Cold store: the throw leaves it empty — entry 0 must not survive.
  expect_load_error(path, "out of range");

  // Warm store: prior entries and provenance survive a failed merge
  // untouched.
  EvalStore warm;
  warm.put(hash, cfg.scoring_key(), cfg.scored_by_label(), 8, out.results);
  EXPECT_THROW(warm.load_file(path), std::runtime_error);
  EXPECT_EQ(warm.entry_count(), 1u);
  EXPECT_EQ(warm.source(), "");
  const std::shared_ptr<const EvalStore::Entry> e =
      warm.find(hash, cfg.scoring_key());
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete());
  std::remove(path.c_str());
}

TEST(EvalStore, SaveIsAtomicAgainstKilledWriters) {
  // save_file stages into path+".tmp" and renames: a writer killed
  // mid-save leaves a partial temp beside the target, never a truncated
  // snapshot under the target itself. Simulate the aftermath of such a
  // kill and check the old snapshot still answers.
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  const std::string hash = config_space_hash(session.space());

  EvalStore store;
  store.put(hash, cfg.scoring_key(), cfg.scored_by_label(), 8, out.results);
  const std::string path = temp_path("atomic.json");
  ASSERT_TRUE(store.save_file(path));
  const std::string good = read_file(path);

  // Kill-style partial write: a truncated temp next to an intact target.
  write_file(path + ".tmp", good.substr(0, good.size() / 3));
  EvalStore reloaded;
  EXPECT_EQ(reloaded.load_file(path), 1u);  // the old snapshot is intact
  EXPECT_EQ(read_file(path), good);

  // The next successful save replaces the target and consumes the temp.
  ASSERT_TRUE(store.save_file(path));
  EXPECT_EQ(read_file(path), good);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // An unwritable destination fails cleanly: no target, no stray temp.
  const std::string nodir = temp_path("no_such_dir/atomic.json");
  EXPECT_FALSE(store.save_file(nodir));
  EXPECT_FALSE(std::ifstream(nodir).good());
  EXPECT_FALSE(std::ifstream((nodir + ".tmp")).good());
  std::remove(path.c_str());
}

TEST(EvalStore, ConcurrentPutFindSaveSeesOnlyWholeEntries) {
  // The store's thread-safety contract (the shape the resident daemon
  // will lean on): concurrent put / find / snapshot never exposes a
  // half-written entry. find() hands back an immutable copy-on-write
  // entry, so a reader's view stays complete even while a writer
  // replaces the entry under the same key, and to_json() pins a
  // consistent point-in-time set. Runs under TSan in CI.
  SweepConfig cfg;
  cfg.space = "smoke";
  cfg.threads = 1;
  SweepSession session(cfg);
  const SweepOutcome out = session.run();
  const std::string hash = config_space_hash(session.space());
  const std::string scoring = cfg.scoring_key();

  EvalStore store;
  store.put(hash, scoring, "analytic", 8, out.results);
  const std::string baseline = store.to_json();

  constexpr int kIters = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Writers: republish the same entry (copy-on-write swap each time).
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        store.put(hash, scoring, "analytic", 8, out.results);
    });
  }
  // Readers: every observed entry must be whole — 8 results, complete().
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const std::shared_ptr<const EvalStore::Entry> e =
            store.find(hash, scoring);
        if (e == nullptr || !e->complete() || e->results.size() != 8u)
          failed.store(true);
      }
    });
  }
  // Snapshotter: a racing serialization always matches the (stable)
  // single-entry rendering, because put() republishes identical bytes.
  threads.emplace_back([&] {
    for (int i = 0; i < kIters / 10; ++i)
      if (store.to_json() != baseline) failed.store(true);
  });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.to_json(), baseline);
}

}  // namespace
}  // namespace apsq::dse
