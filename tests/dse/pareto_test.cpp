#include "dse/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace apsq::dse {
namespace {

EvalResult make(const std::string& wl, int bits, index_t gs, double e,
                double a, double err) {
  EvalResult r;
  r.point.workload = wl;
  r.point.psum = PsumConfig{bits, true, gs};
  r.obj = Objectives{e, a, err};
  return r;
}

TEST(Dominance, StrictInAllObjectives) {
  EXPECT_TRUE(dominates({1, 1, 1}, {2, 2, 2}));
  EXPECT_FALSE(dominates({2, 2, 2}, {1, 1, 1}));
}

TEST(Dominance, EqualObjectivesDoNotDominate) {
  EXPECT_FALSE(dominates({1, 2, 3}, {1, 2, 3}));
}

TEST(Dominance, OneBetterRestEqualDominates) {
  EXPECT_TRUE(dominates({1, 2, 3}, {1, 2, 4}));
  EXPECT_TRUE(dominates({0, 2, 3}, {1, 2, 3}));
}

TEST(Dominance, TradeOffNeitherDominates) {
  EXPECT_FALSE(dominates({1, 5, 1}, {2, 2, 2}));
  EXPECT_FALSE(dominates({2, 2, 2}, {1, 5, 1}));
}

TEST(Dominance, LatencyIsAFullObjective) {
  // Equal on the classic three, better latency → dominates under the
  // default (all-objective) set.
  EXPECT_TRUE(dominates({1, 2, 3, 4}, {1, 2, 3, 5}));
  // A latency win can break three-objective dominance.
  EXPECT_FALSE(dominates({1, 2, 3, 9}, {2, 3, 4, 5}));
}

TEST(ObjectiveSet, DefaultIsTheCoreQuartet) {
  // The default set stays the paper's four objectives so existing sweeps
  // and their goldens are untouched by the maximize-objective additions;
  // opting into the full seven takes an explicit all().
  const ObjectiveSet core;
  EXPECT_EQ(core.size(), static_cast<size_t>(kCoreObjectiveCount));
  for (int i = 0; i < kCoreObjectiveCount; ++i)
    EXPECT_TRUE(core.contains(static_cast<Objective>(i)));
  EXPECT_FALSE(core.contains(Objective::kPeUtilization));
  EXPECT_FALSE(core.contains(Objective::kDramBwHeadroom));
  EXPECT_FALSE(core.contains(Objective::kThroughputPerArea));
  EXPECT_EQ(core.to_string(), "energy,area,error,latency");
  EXPECT_EQ(ObjectiveSet::core().to_string(), core.to_string());

  const ObjectiveSet all = ObjectiveSet::all();
  EXPECT_EQ(all.size(), static_cast<size_t>(kObjectiveCount));
  for (int i = 0; i < kObjectiveCount; ++i)
    EXPECT_TRUE(all.contains(static_cast<Objective>(i)));
  EXPECT_EQ(all.to_string(),
            "energy,area,error,latency,pe_utilization,dram_bw_headroom,"
            "throughput_per_area");
}

TEST(ObjectiveSet, MaximizeObjectivesCompareInMinimizedSpace) {
  // pe_utilization / dram_bw_headroom / throughput_per_area are maximized:
  // a point that is better (higher) on one of them must dominate in the
  // minimized space every comparison runs in.
  EXPECT_EQ(objective_direction(Objective::kEnergy), Direction::kMinimize);
  EXPECT_EQ(objective_direction(Objective::kPeUtilization),
            Direction::kMaximize);
  EXPECT_EQ(objective_direction(Objective::kDramBwHeadroom),
            Direction::kMaximize);
  EXPECT_EQ(objective_direction(Objective::kThroughputPerArea),
            Direction::kMaximize);

  Objectives hi, lo;
  hi.pe_utilization = 0.9;
  lo.pe_utilization = 0.2;
  EXPECT_LT(hi.minimized(Objective::kPeUtilization),
            lo.minimized(Objective::kPeUtilization));
  // Minimize objectives pass through untouched — byte-identical behavior.
  hi.energy_pj = 123.25;
  EXPECT_EQ(hi.minimized(Objective::kEnergy), 123.25);

  ObjectiveSet set = ObjectiveSet::parse("energy,pe_utilization");
  Objectives a, b;
  a.energy_pj = 1.0;
  a.pe_utilization = 0.9;
  b.energy_pj = 1.0;
  b.pe_utilization = 0.2;
  EXPECT_TRUE(dominates(a, b, set));
  EXPECT_FALSE(dominates(b, a, set));
  // throughput_per_area's transform is finite at the default value 0, so
  // a point that never filled it still participates in dominance.
  EXPECT_EQ(a.minimized(Objective::kThroughputPerArea), 1.0);
}

TEST(ObjectiveSet, ParseSubsetInAnyOrderIsCanonical) {
  const ObjectiveSet s = ObjectiveSet::parse("latency,energy");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Objective::kEnergy));
  EXPECT_TRUE(s.contains(Objective::kLatency));
  EXPECT_FALSE(s.contains(Objective::kArea));
  EXPECT_FALSE(s.contains(Objective::kError));
  // list()/to_string are in storage order, not parse order.
  EXPECT_EQ(s.to_string(), "energy,latency");
}

TEST(ObjectiveSet, ParseRejectsBadInput) {
  EXPECT_THROW(ObjectiveSet::parse(""), std::logic_error);
  EXPECT_THROW(ObjectiveSet::parse("energy,throughput"), std::logic_error);
  EXPECT_THROW(ObjectiveSet::parse("energy,energy"), std::logic_error);
}

TEST(Dominance, SubsetChangesTheVerdict) {
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");
  const Objectives a{1, 9, 9, 1};  // best energy+latency, terrible rest
  const Objectives b{2, 1, 1, 2};
  EXPECT_TRUE(dominates(a, b, el));
  EXPECT_FALSE(dominates(a, b));  // full set: area/error trade off
}

TEST(ParetoFront, ObjectiveSubsetReslicesTheFront) {
  // c is dominated in the energy×latency plane but survives the full
  // 4-objective front through its area advantage.
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 9.0, 9.0),  // a: best energy
      make("w", 6, 1, 9.0, 1.0, 9.0),  // b: best area
      make("w", 8, 1, 2.0, 5.0, 9.0),  // c: dominated by a on energy/latency
  };
  // (error and latency default to the same value for all three points.)
  EXPECT_EQ(pareto_front(pts).size(), 3u);
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");
  const std::vector<EvalResult> front = pareto_front(pts, el);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].point.psum.psum_bits, 4);
}

TEST(ParetoFront, HandBuiltThreeObjectiveSet) {
  // Front: a (best energy), b (best area), c (best error).
  // d is dominated by a; e is dominated by everything.
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 9.0, 9.0),   // a
      make("w", 6, 1, 9.0, 1.0, 9.0),   // b
      make("w", 8, 1, 9.0, 9.0, 1.0),   // c
      make("w", 4, 2, 2.0, 9.5, 9.5),   // d — dominated by a
      make("w", 4, 3, 10.0, 10.0, 10.0) // e — dominated by all
  };
  const std::vector<EvalResult> front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& f : front)
    EXPECT_FALSE(is_dominated(f, pts)) << canonical_key(f.point);
  // Dominated points really are dominated.
  EXPECT_TRUE(is_dominated(pts[3], pts));
  EXPECT_TRUE(is_dominated(pts[4], pts));
}

TEST(ParetoFront, TiedObjectivesBothKept) {
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 2.0, 3.0),
      make("w", 8, 2, 1.0, 2.0, 3.0),  // identical objectives, different config
  };
  EXPECT_EQ(pareto_front(pts).size(), 2u);
}

TEST(ParetoFront, ExactDuplicateConfigCollapsed) {
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 2.0, 3.0),
      make("w", 4, 1, 1.0, 2.0, 3.0),
  };
  EXPECT_EQ(pareto_front(pts).size(), 1u);
}

TEST(ParetoFront, SingletonAndEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
  const std::vector<EvalResult> one = {make("w", 8, 1, 1, 1, 1)};
  EXPECT_EQ(pareto_front(one).size(), 1u);
}

TEST(ParetoFront, OutputSortedByCanonicalKey) {
  const std::vector<EvalResult> pts = {
      make("zeta", 8, 1, 1.0, 9.0, 9.0),
      make("alpha", 8, 1, 9.0, 1.0, 9.0),
      make("mid", 8, 1, 9.0, 9.0, 1.0),
  };
  const std::vector<EvalResult> front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  for (size_t i = 1; i < front.size(); ++i)
    EXPECT_LT(canonical_key(front[i - 1].point), canonical_key(front[i].point));
}

TEST(ParetoFront, PermutationInvariant) {
  // Random objective cloud; shuffling the input must not change the front.
  Rng rng(42);
  std::vector<EvalResult> pts;
  for (int i = 0; i < 64; ++i)
    pts.push_back(make("w" + std::to_string(i), 4 + (i % 13), 1 + (i % 4),
                       rng.uniform(0, 10), rng.uniform(0, 10),
                       rng.uniform(0, 10)));
  const std::vector<EvalResult> front_a = pareto_front(pts);

  std::vector<index_t> perm(pts.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
  rng.shuffle(perm);
  std::vector<EvalResult> shuffled;
  for (index_t i : perm) shuffled.push_back(pts[static_cast<size_t>(i)]);
  const std::vector<EvalResult> front_b = pareto_front(shuffled);

  ASSERT_EQ(front_a.size(), front_b.size());
  for (size_t i = 0; i < front_a.size(); ++i)
    EXPECT_EQ(canonical_key(front_a[i].point), canonical_key(front_b[i].point));
}

TEST(ParetoFrontByWorkload, CrossWorkloadDominationIsIgnored) {
  // b's point is strictly worse than a's on every objective, but it is the
  // only point of workload "b" — per-workload it survives; globally not.
  const std::vector<EvalResult> pts = {
      make("a", 8, 1, 1.0, 1.0, 1.0),
      make("b", 8, 1, 2.0, 2.0, 2.0),
  };
  EXPECT_EQ(pareto_front(pts).size(), 1u);
  const std::vector<EvalResult> front = pareto_front_by_workload(pts);
  ASSERT_EQ(front.size(), 2u);
  // Groups are emitted in workload-name order.
  EXPECT_EQ(front[0].point.workload, "a");
  EXPECT_EQ(front[1].point.workload, "b");
}

TEST(ParetoFrontByWorkload, MatchesPerGroupExtraction) {
  Rng rng(11);
  std::vector<EvalResult> pts;
  for (int i = 0; i < 40; ++i)
    pts.push_back(make(i % 2 ? "odd" : "even", 4 + (i % 13), 1 + (i % 4),
                       rng.uniform(0, 4), rng.uniform(0, 4),
                       rng.uniform(0, 4)));
  const std::vector<EvalResult> combined = pareto_front_by_workload(pts);
  std::vector<EvalResult> evens, odds;
  for (const auto& p : pts)
    (p.point.workload == "even" ? evens : odds).push_back(p);
  const std::vector<EvalResult> fe = pareto_front(evens);
  const std::vector<EvalResult> fo = pareto_front(odds);
  ASSERT_EQ(combined.size(), fe.size() + fo.size());
  for (size_t i = 0; i < fe.size(); ++i)
    EXPECT_EQ(canonical_key(combined[i].point), canonical_key(fe[i].point));
  for (size_t i = 0; i < fo.size(); ++i)
    EXPECT_EQ(canonical_key(combined[fe.size() + i].point),
              canonical_key(fo[i].point));
}

TEST(ParetoFront, EveryNonFrontPointIsDominated) {
  Rng rng(7);
  std::vector<EvalResult> pts;
  for (int i = 0; i < 48; ++i)
    pts.push_back(make("w" + std::to_string(i), 4 + (i % 13), 1 + (i % 4),
                       rng.uniform(0, 4), rng.uniform(0, 4),
                       rng.uniform(0, 4)));
  const std::vector<EvalResult> front = pareto_front(pts);
  for (const auto& p : pts) {
    const bool in_front =
        std::any_of(front.begin(), front.end(), [&](const EvalResult& f) {
          return canonical_key(f.point) == canonical_key(p.point);
        });
    EXPECT_EQ(!in_front, is_dominated(p, pts)) << canonical_key(p.point);
  }
}

TEST(ParetoFront, NonFiniteObjectivesNeverEnterAFront) {
  // NaN breaks dominance transitivity (a NaN point neither dominates nor
  // is dominated), so extraction refuses it outright instead of emitting
  // a schedule-dependent front.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    std::vector<EvalResult> pts = {make("w", 4, 1, 1.0, 1.0, 1.0),
                                   make("w", 6, 1, bad, 2.0, 2.0)};
    EXPECT_THROW(pareto_front(pts), std::logic_error);
    EXPECT_THROW(pareto_front_by_workload(pts), std::logic_error);
  }
  // Only *active* objectives are checked: an unused field may hold a
  // sentinel without blocking extraction over the rest.
  std::vector<EvalResult> pts = {make("w", 4, 1, 1.0, 1.0, 1.0),
                                 make("w", 6, 1, 2.0, 2.0, 2.0)};
  pts[1].obj.latency_s = nan;
  EXPECT_THROW(pareto_front(pts), std::logic_error);
  EXPECT_EQ(pareto_front(pts, ObjectiveSet::parse("energy,area")).size(), 1u);

  // The guard sits on ingestion into Objectives too.
  Objectives o;
  o.set(Objective::kLatency, nan);
  EXPECT_FALSE(o.all_finite());
  EXPECT_TRUE((Objectives{1.0, 2.0, 3.0, 4.0}).all_finite());
}

TEST(EpsilonDominance, BandZeroReducesToPlainDominance) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Objectives a{rng.uniform(0, 4), rng.uniform(0, 4), rng.uniform(0, 4),
                       rng.uniform(0, 4)};
    const Objectives b{rng.uniform(0, 4), rng.uniform(0, 4), rng.uniform(0, 4),
                       rng.uniform(0, 4)};
    EXPECT_EQ(epsilon_dominates(a, b, 0.0), dominates(a, b));
  }
}

TEST(EpsilonDominance, RelativeSlackIsPerObjective) {
  // b is 4% worse than a everywhere: inside a 5% band (not ε-dominated),
  // outside a 3% one.
  const Objectives a{1.0, 1.0, 1.0, 1.0};
  const Objectives b{1.04, 1.04, 1.04, 1.04};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(epsilon_dominates(a, b, 0.05));
  EXPECT_TRUE(epsilon_dominates(a, b, 0.03));
  // Negative band is malformed.
  EXPECT_THROW(epsilon_dominates(a, b, -0.1), std::logic_error);
}

/// Key set of a result list, for set-inclusion checks.
std::vector<std::string> keys_of(const std::vector<EvalResult>& pts) {
  std::vector<std::string> keys;
  for (const auto& p : pts) keys.push_back(canonical_key(p.point));
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<EvalResult> random_cloud(u64 seed, int n) {
  Rng rng(seed);
  std::vector<EvalResult> pts;
  for (int i = 0; i < n; ++i) {
    EvalResult r = make("w" + std::to_string(i % 5), 4 + (i % 13), 1 + (i % 4),
                        rng.uniform(0, 4), rng.uniform(0, 4),
                        rng.uniform(0, 4));
    // A real latency draw keeps the cloud honest: leaving the field at its
    // 0 default would tie every point on latency, and a tie on any
    // objective protects a point from ε-domination at positive bands.
    r.obj.latency_s = rng.uniform(0, 4);
    pts.push_back(r);
  }
  return pts;
}

TEST(EpsilonBand, BandZeroEqualsTheFront) {
  const std::vector<EvalResult> pts = random_cloud(0xE9, 80);
  EXPECT_EQ(keys_of(epsilon_band(pts, 0.0)), keys_of(pareto_front(pts)));
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");
  EXPECT_EQ(keys_of(epsilon_band(pts, 0.0, el)),
            keys_of(pareto_front(pts, el)));
}

TEST(EpsilonBand, GrowsMonotonicallyWithBandAndContainsTheFront) {
  const std::vector<EvalResult> pts = random_cloud(0xBAD, 120);
  const std::vector<std::string> front_keys = keys_of(pareto_front(pts));
  std::vector<std::string> prev;
  for (const double band : {0.0, 0.02, 0.05, 0.1, 0.5, 2.0}) {
    const std::vector<std::string> cur = keys_of(epsilon_band(pts, band));
    EXPECT_TRUE(std::includes(cur.begin(), cur.end(), front_keys.begin(),
                              front_keys.end()))
        << "band " << band << " lost a front member";
    if (!prev.empty()) {
      EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                                prev.end()))
          << "band " << band << " is not a superset of the previous band";
    }
    prev = cur;
  }
}

TEST(EpsilonBand, InfiniteBandKeepsEveryPoint) {
  const std::vector<EvalResult> pts = random_cloud(7, 40);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(epsilon_band(pts, inf).size(), pts.size());  // all keys distinct
  // ... including points whose objectives contain exact zeros (0 · ∞
  // must not poison the comparison).
  std::vector<EvalResult> with_zero = pts;
  with_zero.push_back(make("z", 4, 1, 0.0, 0.0, 0.0));
  EXPECT_EQ(epsilon_band(with_zero, inf).size(), with_zero.size());
}

TEST(EpsilonBand, TiesOnEqualObjectivesAllKept) {
  // Identical objectives, different configs: neither ε-dominates the
  // other at any band (no strict win), so both stay — at band 0 and up.
  // Latencies are set explicitly: an exact tie on ANY objective —
  // including one whose value is 0 — protects a point from ε-domination
  // at every positive band (the relative slack inflates the dominator
  // past the tie), so a strictly-dominated point must be strictly worse
  // everywhere to be excluded.
  std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 2.0, 3.0),
      make("w", 8, 2, 1.0, 2.0, 3.0),
      make("w", 8, 4, 2.0, 3.0, 4.0),  // strictly dominated, outside 5%
  };
  pts[0].obj.latency_s = 3.0;
  pts[1].obj.latency_s = 3.0;
  pts[2].obj.latency_s = 4.0;
  for (const double band : {0.0, 0.05}) {
    const std::vector<EvalResult> b = epsilon_band(pts, band);
    ASSERT_EQ(b.size(), 2u) << "band " << band;
    EXPECT_EQ(b[0].point.psum.group_size, 1);
    EXPECT_EQ(b[1].point.psum.group_size, 2);
  }
  // A wide enough band pulls the dominated point back in (its smallest
  // relative gap to the front is 1/3, on error and latency, so band 1.0
  // comfortably reaches it).
  EXPECT_EQ(epsilon_band(pts, 1.0).size(), 3u);
  // Exact duplicate configurations still collapse to one entry.
  std::vector<EvalResult> dup = {make("w", 4, 1, 1.0, 2.0, 3.0),
                                 make("w", 4, 1, 1.0, 2.0, 3.0)};
  EXPECT_EQ(epsilon_band(dup, 0.05).size(), 1u);
}

TEST(EpsilonBand, MembershipMatchesBruteForceDefinition) {
  // A point is in the band iff no *other* point ε-dominates it. The
  // implementation only scans front members; cross-check the definition.
  const std::vector<EvalResult> pts = random_cloud(0xF00D, 90);
  for (const double band : {0.02, 0.1}) {
    const std::vector<std::string> got = keys_of(epsilon_band(pts, band));
    std::vector<std::string> expected;
    for (const auto& p : pts) {
      bool dominated = false;
      for (const auto& q : pts)
        if (canonical_key(q.point) != canonical_key(p.point) &&
            epsilon_dominates(q.obj, p.obj, band)) {
          dominated = true;
          break;
        }
      if (!dominated) expected.push_back(canonical_key(p.point));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "band " << band;
  }
}

TEST(EpsilonBand, RejectsNegativeObjectivesAndNegativeBand) {
  const std::vector<EvalResult> ok = {make("w", 4, 1, 1.0, 1.0, 1.0)};
  EXPECT_THROW(epsilon_band(ok, -0.05), std::logic_error);
  const std::vector<EvalResult> neg = {make("w", 4, 1, -1.0, 1.0, 1.0)};
  EXPECT_THROW(epsilon_band(neg, 0.05), std::logic_error);
  // A negative value on an *inactive* objective is fine.
  EXPECT_EQ(epsilon_band(neg, 0.05, ObjectiveSet::parse("area,error")).size(),
            1u);
}

TEST(EpsilonBandByWorkload, GroupsLikeParetoFrontByWorkload) {
  // b's only point is far outside a's band but owns its own workload
  // group, so the per-workload band keeps it. (Latencies are set
  // explicitly: a latency tie — even at 0 — would protect the far-outside
  // point from ε-domination.)
  std::vector<EvalResult> pts = {
      make("a", 8, 1, 1.0, 1.0, 1.0),
      make("a", 4, 1, 1.02, 1.02, 1.02),  // inside a 5% band of the front
      make("a", 6, 1, 9.0, 9.0, 9.0),     // far outside
      make("b", 8, 1, 50.0, 50.0, 50.0),
  };
  pts[0].obj.latency_s = 1.0;
  pts[1].obj.latency_s = 1.02;
  pts[2].obj.latency_s = 9.0;
  pts[3].obj.latency_s = 50.0;
  const std::vector<EvalResult> band = epsilon_band_by_workload(pts, 0.05);
  ASSERT_EQ(band.size(), 3u);
  EXPECT_EQ(band[0].point.workload, "a");
  EXPECT_EQ(band[1].point.workload, "a");
  EXPECT_EQ(band[2].point.workload, "b");
}

TEST(EpsilonDominance, AbsoluteFloorWidensZeroValuedObjectives) {
  // Regression for the zero-width-band degenerate: a purely relative
  // slack (abs_floor = 0) around an objective whose value is exactly 0
  // forgives nothing — a candidate worse by any δ > 0 there is
  // ε-dominated at every finite band. The floor converts band ε into an
  // absolute allowance of ε · floor at value 0.
  const ObjectiveSet err = ObjectiveSet::parse("error");
  const Objectives f{1.0, 1.0, 0.0, 1.0};
  const Objectives tie{1.0, 1.0, 1e-14, 1.0};   // numerical-noise tie
  const Objectives worse{1.0, 1.0, 1e-6, 1.0};  // genuinely worse
  EXPECT_TRUE(epsilon_dominates(f, tie, 0.05, err, /*abs_floor=*/0.0));
  EXPECT_FALSE(epsilon_dominates(f, tie, 0.05, err));  // 1e-14 < 0.05·1e-12
  EXPECT_TRUE(epsilon_dominates(f, worse, 0.05, err));
  // band = 0 stays exact dominance regardless of the floor.
  EXPECT_TRUE(epsilon_dominates(f, tie, 0.0, err));
  EXPECT_THROW(epsilon_dominates(f, tie, 0.05, err, -1.0), std::logic_error);
}

TEST(EpsilonBand, AbsoluteFloorPromotesTiesAtZeroObjectives) {
  // The epsilon_band view of the same regression: the exact-zero front
  // member silently never let near-ties through at abs_floor = 0.
  const ObjectiveSet err = ObjectiveSet::parse("error");
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 1.0, 0.0),    // front: exact-zero error
      make("w", 8, 1, 1.0, 1.0, 1e-14),  // tie at numerical-noise scale
      make("w", 6, 1, 1.0, 1.0, 1e-6),   // genuinely worse
  };
  // Old behaviour: the tie is never promoted, at any finite band.
  EXPECT_EQ(epsilon_band(pts, 0.05, err, /*abs_floor=*/0.0).size(), 1u);
  EXPECT_EQ(epsilon_band(pts, 1e6, err, /*abs_floor=*/0.0).size(), 1u);
  // The default floor forgives band · floor = 5e-14 of absolute gap: the
  // 1e-14 tie is promoted, the 1e-6 point still is not.
  const std::vector<EvalResult> band = epsilon_band(pts, 0.05, err);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(band[0].point.psum.psum_bits, 4);
  EXPECT_EQ(band[1].point.psum.psum_bits, 8);
  // band = ∞ keeps everything, floor or no floor.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(epsilon_band(pts, inf, err, 0.0).size(), 3u);
  EXPECT_EQ(epsilon_band(pts, inf, err).size(), 3u);
}

TEST(PromotionMargins, ZeroFloorTieAtZeroObjectiveIsVacuousNotShielding) {
  // With abs_floor = 0, an exact tie at a zero-valued objective is a
  // vacuous ε-dominance constraint — 0·(1+b) ≤ 0 holds at every band and
  // is never strict — so it must neither shield a candidate that is
  // strictly worse elsewhere nor count as a strict win. epsilon_band and
  // epsilon_dominates have to agree on this.
  const ObjectiveSet ee = ObjectiveSet::parse("energy,error");
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 9, 0.0),
      make("w", 8, 1, 2.0, 9, 0.0),  // 100% worse energy, tied at error 0
  };
  EXPECT_TRUE(epsilon_dominates(pts[0].obj, pts[1].obj, 0.5, ee, 0.0));
  EXPECT_EQ(epsilon_band(pts, 0.5, ee, /*abs_floor=*/0.0).size(), 1u);
  // The candidate enters exactly when the energy slack runs out of
  // strictness: at band 1.0, 1·(1+1) == 2 ties and nothing is strict.
  const std::vector<PromotionMargin> margins =
      promotion_margins(pts, ee, /*abs_floor=*/0.0);
  ASSERT_EQ(margins.size(), 2u);
  EXPECT_EQ(margins[1].enter_band, 1.0);
  EXPECT_TRUE(margins[1].enter_inclusive);
  EXPECT_FALSE(epsilon_dominates(pts[0].obj, pts[1].obj, 1.0, ee, 0.0));
  EXPECT_EQ(epsilon_band(pts, 1.0, ee, /*abs_floor=*/0.0).size(), 2u);
  // With the default floor the zero tie blocks dominance instead (the
  // floor inflates 0 past it), consistent with ties at positive values.
  EXPECT_EQ(epsilon_band(pts, 0.5, ee).size(), 2u);
}

TEST(PromotionMargins, FrontEntersAtZeroAndThresholdsMatchTheBand) {
  const std::vector<EvalResult> pts = random_cloud(0xCAFE, 60);
  const std::vector<PromotionMargin> margins = promotion_margins(pts);
  ASSERT_EQ(margins.size(), pts.size());  // all keys distinct
  const std::vector<std::string> front_keys = keys_of(pareto_front(pts));
  for (size_t i = 0; i < margins.size(); ++i) {
    const std::string key = canonical_key(margins[i].result.point);
    if (i > 0) {  // key-ordered, like pareto_front
      EXPECT_LT(canonical_key(margins[i - 1].result.point), key);
    }
    // A point enters at 0 inclusively iff it is a front member.
    const bool in_front = std::binary_search(front_keys.begin(),
                                             front_keys.end(), key);
    EXPECT_EQ(in_front,
              margins[i].enter_band == 0.0 && margins[i].enter_inclusive)
        << key;
    // The threshold is exact: membership at enter_band itself follows
    // enter_inclusive, and any wider band contains the point.
    const std::vector<std::string> at =
        keys_of(epsilon_band(pts, margins[i].enter_band));
    EXPECT_EQ(std::binary_search(at.begin(), at.end(), key),
              margins[i].enter_inclusive)
        << key;
    const std::vector<std::string> above =
        keys_of(epsilon_band(pts, margins[i].enter_band * 1.5 + 1e-9));
    EXPECT_TRUE(std::binary_search(above.begin(), above.end(), key)) << key;
  }
}

TEST(BestByMargin, RanksByMarginWithStableKeyTieBreakAtTheBoundary) {
  // One workload, one active objective — a margin ladder with an exact
  // tie at +4%. The budget boundary must slice the tie deterministically
  // by canonical key.
  const ObjectiveSet e = ObjectiveSet::parse("energy");
  const std::vector<EvalResult> pts = {
      make("w", 4, 1, 1.0, 9, 9),   // front
      make("w", 4, 2, 1.02, 9, 9),  // margin ≈ 0.02
      make("w", 4, 3, 1.04, 9, 9),  // margin ≈ 0.04, key-smaller twin
      make("w", 4, 4, 1.04, 9, 9),  // margin ≈ 0.04, key-larger twin
      make("w", 6, 1, 1.10, 9, 9),  // margin ≈ 0.10
  };
  EXPECT_TRUE(best_by_margin(pts, 0, e).empty());
  for (index_t n = 1; n <= 5; ++n) {
    const std::vector<EvalResult> best = best_by_margin(pts, n, e);
    ASSERT_EQ(best.size(), static_cast<size_t>(n)) << "n=" << n;
    // Output is in rank order: margin ascending, canonical key breaking
    // the +4% tie — i.e. exactly the input order above.
    for (index_t i = 0; i < n; ++i)
      EXPECT_EQ(canonical_key(best[static_cast<size_t>(i)].point),
                canonical_key(pts[static_cast<size_t>(i)].point))
          << "n=" << n << " i=" << i;
  }
  // A budget at or past the candidate count returns everything — the
  // budget analogue of band = ∞.
  EXPECT_EQ(best_by_margin(pts, 5, e).size(), 5u);
  EXPECT_EQ(best_by_margin(pts, 1 << 20, e).size(), 5u);
  EXPECT_EQ(keys_of(best_by_margin(pts, 1 << 20, e)),
            keys_of(epsilon_band(pts, std::numeric_limits<double>::infinity(),
                                 e)));
}

TEST(BestByMargin, MarginsArePerWorkloadButTheBudgetIsGlobal) {
  // Each workload's own front ranks at margin 0, so the fronts of every
  // scenario fill the budget before any near-front shell does.
  const ObjectiveSet e = ObjectiveSet::parse("energy");
  const std::vector<EvalResult> pts = {
      make("a", 4, 1, 100.0, 9, 9),  // a's front (worse than every b point)
      make("a", 4, 2, 150.0, 9, 9),  // a's shell, margin 0.5
      make("b", 4, 1, 1.0, 9, 9),    // b's front
      make("b", 4, 2, 1.01, 9, 9),   // b's shell, margin 0.01
  };
  const std::vector<EvalResult> two = best_by_margin(pts, 2, e);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].point.workload, "a");  // both fronts, key order
  EXPECT_EQ(two[1].point.workload, "b");
  const std::vector<EvalResult> three = best_by_margin(pts, 3, e);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[2].point.workload, "b");  // b's shell outranks a's
  EXPECT_EQ(three[2].point.psum.group_size, 2);
}

TEST(ParetoFront, SweepPrefilterMatchesBruteForceScan) {
  // The sort-based sweep must emit the byte-identical front the full
  // O(n²) scan would. Brute force re-derived here from dominates().
  auto brute_force = [](const std::vector<EvalResult>& pts,
                        const ObjectiveSet& objectives) {
    std::vector<EvalResult> front;
    std::vector<std::string> seen;
    std::vector<std::pair<std::string, const EvalResult*>> keyed;
    for (const auto& p : pts) keyed.emplace_back(canonical_key(p.point), &p);
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::string* prev = nullptr;
    for (const auto& [key, p] : keyed) {
      if (prev && key == *prev) continue;
      prev = &key;
      bool dom = false;
      for (const auto& [okey, o] : keyed)
        if (okey != key && dominates(o->obj, p->obj, objectives)) {
          dom = true;
          break;
        }
      if (!dom) front.push_back(*p);
    }
    return front;
  };

  Rng rng(0xF117E5);
  for (const char* objs : {"energy,area,error,latency", "energy,latency",
                           "energy", "area,error"}) {
    const ObjectiveSet objectives = ObjectiveSet::parse(objs);
    for (int round = 0; round < 4; ++round) {
      std::vector<EvalResult> pts;
      const int n = 20 + round * 40;
      for (int i = 0; i < n; ++i) {
        // Coarse integer grid: plenty of exact ties and duplicates.
        EvalResult r = make("w" + std::to_string(i % 7), 4 + (i % 13),
                            1 + (i % 4), rng.uniform(0, 4), rng.uniform(0, 4),
                            rng.uniform(0, 4));
        r.obj.latency_s = std::floor(rng.uniform(0, 3));
        pts.push_back(r);
      }
      const std::vector<EvalResult> fast = pareto_front(pts, objectives);
      const std::vector<EvalResult> slow = brute_force(pts, objectives);
      ASSERT_EQ(fast.size(), slow.size()) << objs << " round " << round;
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(canonical_key(fast[i].point), canonical_key(slow[i].point));
        for (int k = 0; k < kObjectiveCount; ++k)
          EXPECT_EQ(fast[i].obj.get(static_cast<Objective>(k)),
                    slow[i].obj.get(static_cast<Objective>(k)));
      }
    }
  }
}

}  // namespace
}  // namespace apsq::dse
