// The job-spec layer's contract: defaults merge field-by-field under each
// experiment, every recognized field maps onto SweepConfig exactly as the
// CLI flag would, and parsing is strict — unknown keys, wrong types, and
// out-of-range values throw naming the source, the experiment, and the
// key. Cross-field consistency stays with SweepConfig::validate(), so the
// spec path rejects inconsistent configs with the CLI's exact messages.
#include "dse/jobspec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace apsq::dse {
namespace {

JobSpec parse_text(const std::string& text) {
  return JobSpec::parse(json_parse(text), "<spec>");
}

void expect_parse_error(const std::string& text,
                        const std::string& fragment) {
  try {
    parse_text(text);
    FAIL() << "expected parse to throw for: " << text;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("<spec>"), 0u) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(JobSpec, DefaultsMergeUnderEachExperiment) {
  const JobSpec spec = parse_text(
      "{\"store_in\": \"in.json\", \"store_out\": \"out.json\","
      " \"defaults\": {\"space\": \"smoke\", \"threads\": 2, \"seed\": 7},"
      " \"experiments\": ["
      "   {\"name\": \"a\"},"
      "   {\"name\": \"b\", \"threads\": 3,"
      "    \"objectives\": \"energy,latency\", \"top\": 0}]}");
  EXPECT_EQ(spec.store_in, "in.json");
  EXPECT_EQ(spec.store_out, "out.json");
  ASSERT_EQ(spec.experiments.size(), 2u);
  const JobExperiment& a = spec.experiments[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.config.space, "smoke");
  EXPECT_EQ(a.config.threads, 2);
  EXPECT_EQ(a.config.seed, 7u);
  EXPECT_EQ(a.config.objectives.to_string(), "energy,area,error,latency");
  EXPECT_EQ(a.top, 20);
  const JobExperiment& b = spec.experiments[1];
  EXPECT_EQ(b.config.space, "smoke");   // inherited
  EXPECT_EQ(b.config.threads, 3);       // overridden
  EXPECT_EQ(b.config.seed, 7u);         // inherited
  EXPECT_EQ(b.config.objectives.to_string(), "energy,latency");
  EXPECT_EQ(b.top, 0);
}

TEST(JobSpec, UnnamedExperimentsGetIndexNames) {
  const JobSpec spec =
      parse_text("{\"experiments\": [{}, {\"space\": \"smoke\"}]}");
  EXPECT_EQ(spec.experiments[0].name, "exp0");
  EXPECT_EQ(spec.experiments[1].name, "exp1");
}

TEST(JobSpec, FieldsMapOntoSweepConfigLikeTheFlags) {
  const JobSpec spec = parse_text(
      "{\"experiments\": [{"
      " \"backend\": \"mixed\", \"promote_adaptive\": true,"
      " \"promote_objectives\": \"energy,latency\","
      " \"calibrate_per_class\": true, \"calibration_csv\": \"cal.csv\","
      " \"sim_threads\": 2, \"shrink\": 16, \"max_dim\": 32,"
      " \"where\": \"area<=2.5e6\","
      " \"csv\": \"pts.csv\", \"front_csv\": \"front.csv\"}]}");
  const JobExperiment& e = spec.experiments[0];
  EXPECT_EQ(e.config.backend, EvalBackend::kMixed);
  EXPECT_TRUE(e.config.promote_adaptive);
  EXPECT_TRUE(e.config.promote_objectives_set);
  EXPECT_EQ(e.config.promote_objectives.to_string(), "energy,latency");
  EXPECT_TRUE(e.config.calibrate_per_class);
  EXPECT_EQ(e.config.calibration_csv, "cal.csv");
  EXPECT_EQ(e.config.sim_threads, 2);
  EXPECT_EQ(e.config.shrink, 16);
  EXPECT_EQ(e.config.max_dim, 32);
  EXPECT_EQ(e.config.where, "area<=2.5e6");
  EXPECT_EQ(e.csv, "pts.csv");
  EXPECT_EQ(e.front_csv, "front.csv");
  // The merged config passes the same consistency rules the CLI runs.
  std::ostringstream err;
  EXPECT_TRUE(e.config.validate(err));
}

TEST(JobSpec, RejectsUnknownKeysNamingExperimentAndKey) {
  expect_parse_error("{\"experiments\": [{\"nme\": \"x\"}]}",
                     "experiment 0: unknown key \"nme\"");
  expect_parse_error(
      "{\"defaults\": {\"spce\": \"paper\"}, \"experiments\": [{}]}",
      "defaults: unknown key \"spce\"");
  expect_parse_error("{\"experimnts\": []}", "spec: unknown key");
  expect_parse_error("{\"defaults\": {\"name\": \"x\"}, \"experiments\": [{}]}",
                     "\"name\" is not a defaults field");
}

TEST(JobSpec, RejectsWrongTypesAndOutOfRangeValues) {
  expect_parse_error("{\"experiments\": [{\"threads\": \"four\"}]}",
                     "\"threads\"");
  expect_parse_error("{\"experiments\": [{\"threads\": 0}]}",
                     "\"threads\" must be in [1, 4096]");
  expect_parse_error("{\"experiments\": [{\"threads\": 2.5}]}",
                     "expected an integer");
  expect_parse_error("{\"experiments\": [{\"seed\": -1}]}",
                     "\"seed\" must be >= 0");
  expect_parse_error("{\"experiments\": [{\"promote_band\": -0.5}]}",
                     "\"promote_band\" must be >= 0");
  expect_parse_error("{\"experiments\": [{\"promote_budget\": 0}]}",
                     "\"promote_budget\" must be in");
  expect_parse_error("{\"experiments\": [{\"backend\": \"warp\"}]}",
                     "\"backend\"");
  expect_parse_error("{\"experiments\": [{\"objectives\": \"energy,joy\"}]}",
                     "unknown objective");
  expect_parse_error("{\"experiments\": [{\"where\": \"area=1\"}]}",
                     "\"where\"");
}

TEST(JobSpec, SearchFieldsMapOntoSweepConfigLikeTheFlags) {
  const JobSpec spec = parse_text(
      "{\"experiments\": [{"
      " \"space\": \"fine\", \"mode\": \"search\", \"strategy\": \"evolve\","
      " \"budget\": 512, \"search_seed\": 7}]}");
  const JobExperiment& e = spec.experiments[0];
  EXPECT_EQ(e.config.mode, RunMode::kSearch);
  EXPECT_TRUE(e.config.strategy_set);
  EXPECT_EQ(e.config.strategy, SearchStrategy::kEvolve);
  EXPECT_TRUE(e.config.budget_set);
  EXPECT_EQ(e.config.budget, 512);
  EXPECT_TRUE(e.config.search_seed_set);
  EXPECT_EQ(e.config.search_seed, 7u);
  std::ostringstream err;
  EXPECT_TRUE(e.config.validate(err)) << err.str();
}

TEST(JobSpec, V1SpecsWithoutSearchFieldsStillParseAsSweeps) {
  // Back-compat: the search fields are additions to schema v1 — a spec
  // written before they existed must parse to a plain exhaustive sweep.
  const JobSpec spec = parse_text(
      "{\"schema_version\": 1, \"experiments\": [{\"space\": \"smoke\"}]}");
  const JobExperiment& e = spec.experiments[0];
  EXPECT_EQ(e.config.mode, RunMode::kSweep);
  EXPECT_FALSE(e.config.strategy_set);
  EXPECT_FALSE(e.config.budget_set);
  EXPECT_FALSE(e.config.search_seed_set);
}

TEST(JobSpec, RejectsBadSearchValues) {
  expect_parse_error("{\"experiments\": [{\"mode\": \"speedrun\"}]}",
                     "\"mode\"");
  expect_parse_error("{\"experiments\": [{\"strategy\": \"anneal\"}]}",
                     "\"strategy\"");
  expect_parse_error("{\"experiments\": [{\"budget\": 0}]}",
                     "\"budget\" must be in");
  expect_parse_error("{\"experiments\": [{\"search_seed\": -1}]}",
                     "\"search_seed\" must be >= 0");
}

TEST(JobSpec, FutureVersionWithSearchFieldsStillRejectsAtTheGate) {
  // The version gate fires before any field —  including the new search
  // keys — can produce a misleading per-key error, and the message names
  // the source.
  expect_parse_error(
      "{\"schema_version\": 2, \"experiments\":"
      " [{\"mode\": \"search\", \"budget\": 4}]}",
      "unsupported schema_version 2 (supported: 1..1)");
}

TEST(JobSpec, SchemaVersionGateAcceptsV1AndRejectsTheFuture) {
  // An explicit v1 parses; an absent schema_version means v1; a future
  // version is rejected naming the source, the version, and the range —
  // before any other key can produce a misleading "unknown key" error.
  const JobSpec spec = parse_text(
      "{\"schema_version\": 1, \"experiments\": [{\"space\": \"smoke\"}]}");
  EXPECT_EQ(spec.experiments.size(), 1u);
  expect_parse_error("{\"schema_version\": 2, \"experiments\": [{}]}",
                     "unsupported schema_version 2 (supported: 1..1)");
  expect_parse_error(
      "{\"schema_version\": 3, \"futuristic_key\": true, \"experiments\": []}",
      "unsupported schema_version 3");
  expect_parse_error("{\"schema_version\": \"one\", \"experiments\": [{}]}",
                     "schema_version");
}

TEST(JobSpec, RejectsStructuralMistakes) {
  expect_parse_error("{}", "missing \"experiments\" array");
  expect_parse_error("{\"experiments\": []}", "\"experiments\" is empty");
  expect_parse_error("{\"experiments\": {}}", "expected an array");
  expect_parse_error("[]", "top-level value is not an object");
}

TEST(JobSpec, InconsistentConfigsFailValidateWithTheCliMessage) {
  // The spec parses — promotion flags are per-field legal — but the
  // merged config violates the same cross-field rule the CLI enforces,
  // with the identical message.
  const JobSpec spec = parse_text(
      "{\"experiments\": [{\"backend\": \"analytic\","
      " \"promote_band\": 0.1}]}");
  std::ostringstream err;
  EXPECT_FALSE(spec.experiments[0].config.validate(err));
  EXPECT_EQ(err.str(), "--promote-band: requires --backend mixed\n");
}

TEST(JobSpec, ParseFilePrefixesErrorsWithThePath) {
  const std::string path = ::testing::TempDir() + "jobspec_test_bad.json";
  std::ofstream(path) << "{\"experiments\": [{\"zzz\": 1}]}";
  try {
    JobSpec::parse_file(path);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find(path), 0u) << e.what();
  }
  std::remove(path.c_str());
}

/// The bundled specs, findable whether the test runs from the repo root
/// or from a build directory one level below it.
std::string bundled_spec(const std::string& name) {
  for (const char* prefix : {"examples/jobs/", "../examples/jobs/"}) {
    const std::string path = prefix + name;
    if (std::ifstream(path).good()) return path;
  }
  return "";
}

TEST(JobSpec, BundledExampleSpecsParse) {
  // The specs shipped under examples/jobs must stay loadable; CI runs the
  // smoke one end-to-end.
  const std::string smoke_path = bundled_spec("smoke_jobs.json");
  const std::string paper_path = bundled_spec("paper_space.json");
  const std::string search_path = bundled_spec("search_jobs.json");
  if (smoke_path.empty() || paper_path.empty() || search_path.empty())
    GTEST_SKIP() << "examples/jobs not reachable from the test cwd";
  const JobSpec smoke = JobSpec::parse_file(smoke_path);
  EXPECT_EQ(smoke.experiments.size(), 2u);
  const JobSpec paper = JobSpec::parse_file(paper_path);
  EXPECT_EQ(paper.experiments.size(), 4u);
  for (const JobExperiment& e : paper.experiments) {
    std::ostringstream err;
    EXPECT_TRUE(e.config.validate(err)) << e.name << ": " << err.str();
  }
  const JobSpec search = JobSpec::parse_file(search_path);
  EXPECT_EQ(search.experiments.size(), 2u);
  for (const JobExperiment& e : search.experiments) {
    EXPECT_EQ(e.config.mode, RunMode::kSearch) << e.name;
    std::ostringstream err;
    EXPECT_TRUE(e.config.validate(err)) << e.name << ": " << err.str();
  }
}

}  // namespace
}  // namespace apsq::dse
